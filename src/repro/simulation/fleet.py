"""Columnar fleet state: one structure-of-arrays for the whole fleet.

Scaling the paper's system to very large fleets makes the object graph
itself the bottleneck: one :class:`~repro.simulation.node.LocalNode`
Python object per node, a dict entry per node in the transport counters,
and per-node attribute chasing on every slot.  :class:`FleetState`
replaces that with a single structure-of-arrays — the stored values
``z_t`` as one ``(N, d)`` matrix plus per-node clocks, last-transmit
slots, message counters and policy accumulators as flat numpy columns —
that every layer (transport accounting, the central store's staleness
rule, collection engines, the pipeline's forecasts) reads and writes
directly.

:class:`~repro.simulation.node.LocalNode` and
:class:`~repro.simulation.controller.CentralStore` remain as thin views
over these columns for backward compatibility: a ``LocalNode`` is a
``(fleet, index)`` pair whose ``observe``/``stored_value`` touch the
columns in place, and ``CentralStore.values`` is a copy of
``fleet.stored``.  Sharded execution (``Engine.run(trace, shards=K)``)
builds on the same layout: each shard runs collection over a contiguous
column slice and :meth:`FleetState.from_run` /
:func:`merge_collection_shards` reassemble the global state.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError


class FleetState:
    """Structure-of-arrays state for a fleet of ``N`` nodes.

    Columns (all length ``N`` unless noted):

    * ``stored`` — ``(N, d)`` float matrix of the centrally stored
      values ``z_t`` (the nodes' mirrors coincide with the central
      store's copy by construction, so it is held exactly once).
      Allocated lazily on the first transmission when ``dim`` is not
      known up front.
    * ``observed`` — bool, True once the node's forced first
      transmission happened (``z_i`` is defined).
    * ``times`` — int64 per-node slot clocks.
    * ``last_update`` — int64 slot of each node's last transmission
      (``-1`` before the first one); drives the staleness rule.
    * ``message_counts`` — int64 per-node delivered-message counters.
      This array *backs* the channel's
      :class:`~repro.simulation.transport.TransportStats` — counters
      advance only through the channel, never here.
    * ``policy_state`` — float per-node scalar policy accumulator
      (Lyapunov virtual queue ``Q_i(t)`` for the adaptive policy, the
      error-diffusion accumulator for uniform sampling).  Maintained by
      live fleets (node views, collection engines); NaN in trace-level
      snapshots (:meth:`from_run`), where backends do not expose it.

    Args:
        num_nodes: Fleet size ``N``.
        dim: Resource dimensionality ``d``; omit to infer it from the
            first stored value.
        dtype: Floating-point dtype of the ``stored`` and
            ``policy_state`` columns (default float64).  float32 halves
            the fleet's resident footprint — the difference between
            fitting N=1M on one box or not.
    """

    def __init__(
        self,
        num_nodes: int,
        dim: Optional[int] = None,
        dtype: "np.typing.DTypeLike" = np.float64,
    ) -> None:
        if num_nodes < 1:
            raise SimulationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise SimulationError(
                f"fleet dtype must be floating point, got {self.dtype}"
            )
        self._dim: Optional[int] = None
        self.stored: Optional[np.ndarray] = None
        self.observed = np.zeros(self.num_nodes, dtype=bool)
        self.times = np.zeros(self.num_nodes, dtype=np.int64)
        self.last_update = np.full(self.num_nodes, -1, dtype=np.int64)
        self.message_counts = np.zeros(self.num_nodes, dtype=np.int64)
        self.policy_state = np.zeros(self.num_nodes, dtype=self.dtype)
        if dim is not None:
            self.ensure_dim(dim)

    @property
    def dim(self) -> Optional[int]:
        """Resource dimensionality ``d`` (None until first allocation)."""
        return self._dim

    def ensure_dim(self, dim: int) -> np.ndarray:
        """Allocate (or check) the ``(N, d)`` stored matrix.

        The dimensionality is fixed for the fleet's lifetime: a second
        call with a different ``d`` raises, which is what turns silent
        shape drift between runs into a loud error.
        """
        dim = int(dim)
        if self._dim is None:
            if dim < 1:
                raise SimulationError(f"dimension must be >= 1, got {dim}")
            self._dim = dim
            self.stored = np.zeros((self.num_nodes, dim), dtype=self.dtype)
        elif self._dim != dim:
            raise SimulationError(
                f"fleet dimensionality is fixed at d={self._dim}, "
                f"got a d={dim} value"
            )
        return self.stored

    # ------------------------------------------------------------------
    # Whole-fleet (columnar) updates
    # ------------------------------------------------------------------

    def advance_batch(
        self, decisions: np.ndarray, final_stored: np.ndarray
    ) -> None:
        """Fast-forward the whole fleet past a vectorized batch run.

        The columnar counterpart of calling
        :meth:`LocalNode.sync_batch <repro.simulation.node.LocalNode.
        sync_batch>` node by node, including the exact per-node
        last-transmit slots recovered from the decision matrix.
        Message counters are *not* advanced here — transport accounting
        stays with the channel.

        Args:
            decisions: Binary ``(T, N)`` transmission decisions of the
                batch, aligned with each node's current clock.
            final_stored: ``(N, d)`` stored values after the last slot.
        """
        decisions = np.asarray(decisions, dtype=bool)
        num_steps, num_nodes = decisions.shape
        if num_nodes != self.num_nodes:
            raise SimulationError(
                f"decisions cover {num_nodes} nodes, fleet has "
                f"{self.num_nodes}"
            )
        final = np.asarray(final_stored, dtype=self.dtype)
        if final.ndim == 1:
            final = final[:, np.newaxis]
        stored = self.ensure_dim(final.shape[1])
        sent_any = decisions.any(axis=0)
        # Index of each node's last 1 in the decision matrix.
        last_rel = num_steps - 1 - np.argmax(decisions[::-1], axis=0)
        self.last_update[sent_any] = (
            self.times[sent_any] + last_rel[sent_any]
        )
        self.times += num_steps
        stored[sent_any] = final[sent_any]
        self.observed |= sent_any

    # ------------------------------------------------------------------
    # Fleet churn (geometry changes)
    # ------------------------------------------------------------------

    def grow(self, count: int, *, clock: int = 0) -> np.ndarray:
        """Append ``count`` fresh nodes to the fleet.

        Every column is reallocated with the new geometry; the new
        nodes start unobserved (``last_update = -1``, zero stored value
        and policy state) exactly like slot-0 nodes, so their forced
        first transmission happens on their first slot.  Holders of raw
        column references must re-read them afterwards —
        :class:`~repro.simulation.node.LocalNode` views and
        :class:`~repro.simulation.transport.PerNodeMessages` read
        through ``self.fleet``/``stats`` dynamically and stay live, but
        fleet-backed :class:`~repro.simulation.transport.TransportStats`
        must :meth:`~repro.simulation.transport.TransportStats.
        adopt_column` the new ``message_counts``.

        Args:
            count: How many nodes join (>= 1).
            clock: Initial per-node slot clock of the joining nodes —
                pass the session's current frontier so all live nodes
                share one clock.

        Returns:
            The new nodes' indices, ``[N_old, N_old + count)``.
        """
        count = int(count)
        if count < 1:
            raise SimulationError(f"grow count must be >= 1, got {count}")
        old = self.num_nodes
        self.num_nodes = old + count
        self.observed = np.concatenate(
            [self.observed, np.zeros(count, dtype=bool)]
        )
        self.times = np.concatenate(
            [self.times, np.full(count, int(clock), dtype=np.int64)]
        )
        self.last_update = np.concatenate(
            [self.last_update, np.full(count, -1, dtype=np.int64)]
        )
        self.message_counts = np.concatenate(
            [self.message_counts, np.zeros(count, dtype=np.int64)]
        )
        self.policy_state = np.concatenate(
            [self.policy_state, np.zeros(count, dtype=self.dtype)]
        )
        if self.stored is not None:
            self.stored = np.concatenate(
                [self.stored, np.zeros((count, self._dim), dtype=self.dtype)]
            )
        return np.arange(old, self.num_nodes, dtype=np.int64)

    def compact(self, keep: Sequence[int]) -> None:
        """Shrink the fleet to the ``keep`` nodes (in ascending order).

        Surviving nodes are renumbered ``0..len(keep)-1`` in their
        original relative order, so aligned per-node histories can be
        gathered with the same index array.  Columns are reallocated;
        see :meth:`grow` for the reference-rebinding rules.

        Args:
            keep: Strictly increasing indices of the surviving nodes
                (at least one).
        """
        index = np.asarray(keep, dtype=np.int64).ravel()
        if index.size < 1:
            raise SimulationError("compact must keep at least one node")
        if index.size > 1 and not (np.diff(index) > 0).all():
            raise SimulationError(
                "keep indices must be strictly increasing (survivors "
                "keep their relative order)"
            )
        if index[0] < 0 or index[-1] >= self.num_nodes:
            raise SimulationError(
                f"keep indices outside [0, {self.num_nodes})"
            )
        self.num_nodes = int(index.size)
        self.observed = self.observed[index].copy()
        self.times = self.times[index].copy()
        self.last_update = self.last_update[index].copy()
        self.message_counts = self.message_counts[index].copy()
        self.policy_state = self.policy_state[index].copy()
        if self.stored is not None:
            self.stored = self.stored[index].copy()

    def reset_nodes(self, index: Optional[int] = None) -> None:
        """Reset one node (or, with ``index=None``, the whole fleet)."""
        where = slice(None) if index is None else index
        self.observed[where] = False
        self.times[where] = 0
        self.last_update[where] = -1
        self.policy_state[where] = 0.0
        if self.stored is not None:
            self.stored[where] = 0.0

    # ------------------------------------------------------------------
    # Checkpoint state contract
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Serializable copies of every fleet column.

        Together with :meth:`set_state` this is the fleet's checkpoint
        contract: restoring the returned dict into a fresh
        ``FleetState(num_nodes)`` reproduces the columns bit-for-bit.
        """
        return {
            "num_nodes": self.num_nodes,
            "dim": self._dim,
            "dtype": self.dtype.name,
            "stored": None if self.stored is None else self.stored.copy(),
            "observed": self.observed.copy(),
            "times": self.times.copy(),
            "last_update": self.last_update.copy(),
            "message_counts": self.message_counts.copy(),
            "policy_state": self.policy_state.copy(),
        }

    def set_state(self, state: dict) -> None:
        """Restore columns captured by :meth:`get_state`, *in place*.

        Writes into the existing column arrays (never rebinding them),
        so shared references — the channel's counter column, node views
        — keep aliasing the fleet after a restore.
        """
        if int(state["num_nodes"]) != self.num_nodes:
            raise SimulationError(
                f"state holds {state['num_nodes']} nodes, fleet has "
                f"{self.num_nodes}"
            )
        state_dtype = state.get("dtype")
        if state_dtype is not None and np.dtype(state_dtype) != self.dtype:
            raise SimulationError(
                f"state columns are {state_dtype}, fleet is {self.dtype} "
                "(restoring across dtypes would silently cast)"
            )
        if state["dim"] is not None:
            self.ensure_dim(int(state["dim"]))
            self.stored[...] = state["stored"]
        elif self._dim is not None:
            raise SimulationError(
                f"state is undimensioned but the fleet is fixed at "
                f"d={self._dim}"
            )
        self.observed[...] = state["observed"]
        self.times[...] = state["times"]
        self.last_update[...] = state["last_update"]
        self.message_counts[...] = state["message_counts"]
        self.policy_state[...] = state["policy_state"]

    def adopt_state(self, state: dict) -> None:
        """Rebind the columns to ``state``'s arrays, *without copying*.

        The zero-copy counterpart of :meth:`set_state` for resuming from
        an mmap-backed checkpoint: the fleet's columns become the
        state's arrays themselves (copy-on-write views of the archive
        for mmap loads), so a resume at N=1M never materializes a
        second set of columns.  Unlike :meth:`set_state`, every holder
        of the *old* column references is stale afterwards — callers
        (the session's restore path) must re-adopt the channel's counter
        column and any node views.
        """
        if int(state["num_nodes"]) != self.num_nodes:
            raise SimulationError(
                f"state holds {state['num_nodes']} nodes, fleet has "
                f"{self.num_nodes}"
            )
        state_dtype = state.get("dtype")
        if state_dtype is not None and np.dtype(state_dtype) != self.dtype:
            raise SimulationError(
                f"state columns are {state_dtype}, fleet is {self.dtype} "
                "(adopting across dtypes would silently cast)"
            )
        if state["dim"] is not None:
            dim = int(state["dim"])
            if self._dim is not None and self._dim != dim:
                raise SimulationError(
                    f"fleet dimensionality is fixed at d={self._dim}, "
                    f"state has d={dim}"
                )
            stored = state["stored"]
            if stored.dtype != self.dtype:
                raise SimulationError(
                    f"stored column is {stored.dtype}, fleet is {self.dtype}"
                )
            self._dim = dim
            self.stored = stored
        elif self._dim is not None:
            raise SimulationError(
                f"state is undimensioned but the fleet is fixed at "
                f"d={self._dim}"
            )
        self.observed = np.asarray(state["observed"], dtype=bool)
        self.times = np.asarray(state["times"], dtype=np.int64)
        self.last_update = np.asarray(state["last_update"], dtype=np.int64)
        self.message_counts = np.asarray(
            state["message_counts"], dtype=np.int64
        )
        self.policy_state = np.asarray(
            state["policy_state"], dtype=self.dtype
        )

    # ------------------------------------------------------------------
    # Views and assembly
    # ------------------------------------------------------------------

    def node_view(self, index: int, policy) -> "LocalNode":
        """A :class:`LocalNode` view over this fleet's column ``index``."""
        from repro.simulation.node import LocalNode

        return LocalNode(index, policy, fleet=self)

    @classmethod
    def from_run(
        cls,
        stored: np.ndarray,
        decisions: np.ndarray,
    ) -> "FleetState":
        """Snapshot the fleet state a whole-trace collection run implies.

        The message counters are the per-node decision sums (transport
        stats then adopt this column — see
        :meth:`TransportStats.from_node_counts
        <repro.simulation.transport.TransportStats.from_node_counts>` —
        so fleet and transport stay one array).  Policy accumulators are
        not recoverable from a trace-level result (backends do not
        expose them), so the ``policy_state`` column is NaN — explicitly
        untracked, never stale defaults.

        Args:
            stored: ``(T, N, d)`` stored-value trajectory.
            decisions: ``(T, N)`` transmission decisions.
        """
        num_steps, num_nodes, dim = stored.shape
        dtype = stored.dtype if stored.dtype.kind == "f" else np.float64
        fleet = cls(num_nodes, dim, dtype=dtype)
        fleet.advance_batch(decisions, stored[-1])
        fleet.message_counts = decisions.sum(axis=0).astype(np.int64)
        fleet.policy_state.fill(np.nan)
        return fleet


def shard_slices(num_nodes: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` node ranges partitioning a fleet.

    Sizes differ by at most one (``np.array_split`` semantics), so
    shard boundaries are deterministic for a given ``(N, K)``.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    if shards > num_nodes:
        raise SimulationError(
            f"cannot split {num_nodes} nodes into {shards} shards"
        )
    base, extra = divmod(num_nodes, shards)
    bounds = [0]
    for k in range(shards):
        bounds.append(bounds[-1] + base + (1 if k < extra else 0))
    return [(bounds[k], bounds[k + 1]) for k in range(shards)]


def merge_collection_shards(
    shard_results: Sequence,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reassemble per-shard collection outputs into global arrays.

    Shards hold contiguous node ranges in order, so the merge is one
    concatenation along the node axis per array — the resulting
    ``stored`` matrix is bit-identical to a single-shard run because
    every backend's recurrence is independent per node column.

    Args:
        shard_results: Per-shard ``(stored, decisions)`` pairs (or
            objects with those attributes) in shard order.

    Returns:
        ``(stored, decisions)`` for the whole fleet.
    """
    stored_parts, decision_parts = [], []
    for result in shard_results:
        if isinstance(result, tuple):
            stored, decisions = result
        else:
            stored, decisions = result.stored, result.decisions
        stored_parts.append(stored)
        decision_parts.append(decisions)
    return (
        np.concatenate(stored_parts, axis=1),
        np.concatenate(decision_parts, axis=1),
    )


__all__ = ["FleetState", "shard_slices", "merge_collection_shards"]
