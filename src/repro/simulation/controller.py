"""Central node (controller) state (Sec. IV).

The controller keeps the latest received measurement per node — the
vector ``z_t`` — applying the paper's staleness rule: when node ``i``
does not transmit at slot ``t``, ``z_{i,t}`` keeps the most recent
previously received value ``x_{i,t−p}``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.types import Measurement
from repro.exceptions import SimulationError


class CentralStore:
    """The controller's per-node measurement store ``z``.

    Args:
        num_nodes: Number of local nodes N.
        dimension: Resource dimensionality d.
    """

    def __init__(self, num_nodes: int, dimension: int) -> None:
        if num_nodes < 1 or dimension < 1:
            raise SimulationError("num_nodes and dimension must be >= 1")
        self.num_nodes = num_nodes
        self.dimension = dimension
        self._values = np.zeros((num_nodes, dimension))
        self._last_update = np.full(num_nodes, -1, dtype=int)
        self._time = -1

    @property
    def values(self) -> np.ndarray:
        """Current stored matrix ``z_t`` of shape ``(N, d)`` (a copy)."""
        return self._values.copy()

    @property
    def last_update(self) -> np.ndarray:
        """Per-node slot index of the last received measurement."""
        return self._last_update.copy()

    @property
    def initialized(self) -> bool:
        """True once every node has transmitted at least once."""
        return bool((self._last_update >= 0).all())

    def staleness(self, now: int) -> np.ndarray:
        """Per-node age ``p`` such that ``z_{i,now} = x_{i,now−p}``."""
        if not self.initialized:
            raise SimulationError(
                "staleness undefined before every node has reported once"
            )
        return now - self._last_update

    def apply(self, measurements: Iterable[Measurement], now: int) -> None:
        """Ingest one slot's received measurements.

        Args:
            measurements: Messages delivered at slot ``now``.
            now: The current slot index (must be non-decreasing).
        """
        if now < self._time:
            raise SimulationError(
                f"time went backwards: {now} after {self._time}"
            )
        self._time = now
        for measurement in measurements:
            i = measurement.node
            if not 0 <= i < self.num_nodes:
                raise SimulationError(f"unknown node id {i}")
            if measurement.value.shape != (self.dimension,):
                raise SimulationError(
                    f"node {i} sent dimension {measurement.value.shape}, "
                    f"store expects ({self.dimension},)"
                )
            self._values[i] = measurement.value
            self._last_update[i] = now
