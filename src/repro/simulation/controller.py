"""Central node (controller) state (Sec. IV).

The controller keeps the latest received measurement per node — the
vector ``z_t`` — applying the paper's staleness rule: when node ``i``
does not transmit at slot ``t``, ``z_{i,t}`` keeps the most recent
previously received value ``x_{i,t−p}``.

Since the columnar refactor the store is a view over a
:class:`~repro.simulation.fleet.FleetState`: ``values`` is the fleet's
``(N, d)`` ``stored`` matrix and the per-node last-update slots are the
fleet's ``last_update`` column.  Constructed standalone —
``CentralStore(N, d)`` — it owns a private fleet, so the historical API
is unchanged; constructed over a shared fleet it is the same memory the
local-node views mirror, which is exactly the paper's invariant (nodes
track the central copy without feedback).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.types import Measurement
from repro.exceptions import SimulationError
from repro.simulation.fleet import FleetState


class CentralStore:
    """The controller's per-node measurement store ``z``.

    Args:
        num_nodes: Number of local nodes N (omit when ``fleet`` given).
        dimension: Resource dimensionality d (omit when ``fleet`` given
            and already dimensioned).
        fleet: Columnar fleet state to view instead of owning arrays.
    """

    def __init__(
        self,
        num_nodes: Optional[int] = None,
        dimension: Optional[int] = None,
        *,
        fleet: Optional[FleetState] = None,
    ) -> None:
        if fleet is None:
            if num_nodes is None or dimension is None:
                raise SimulationError(
                    "pass num_nodes and dimension, or a fleet"
                )
            if num_nodes < 1 or dimension < 1:
                raise SimulationError(
                    "num_nodes and dimension must be >= 1"
                )
            fleet = FleetState(num_nodes, dimension)
        else:
            if num_nodes is not None and num_nodes != fleet.num_nodes:
                raise SimulationError(
                    f"num_nodes {num_nodes} disagrees with the fleet's "
                    f"{fleet.num_nodes}"
                )
            if dimension is None:
                if fleet.dim is None:
                    raise SimulationError(
                        "the fleet is not dimensioned yet; pass dimension"
                    )
            else:
                # Allocates when the fleet is fresh; raises loudly when
                # it disagrees with an already-dimensioned fleet.
                fleet.ensure_dim(dimension)
        self.fleet = fleet
        self.num_nodes = fleet.num_nodes
        self.dimension = fleet.dim
        self._time = -1

    @property
    def values(self) -> np.ndarray:
        """Current stored matrix ``z_t`` of shape ``(N, d)`` (a copy)."""
        return self.fleet.stored.copy()

    @property
    def last_update(self) -> np.ndarray:
        """Per-node slot index of the last received measurement."""
        return self.fleet.last_update.copy()

    @property
    def initialized(self) -> bool:
        """True once every node has transmitted at least once."""
        return bool((self.fleet.last_update >= 0).all())

    def staleness(self, now: int) -> np.ndarray:
        """Per-node age ``p`` such that ``z_{i,now} = x_{i,now−p}``."""
        if not self.initialized:
            raise SimulationError(
                "staleness undefined before every node has reported once"
            )
        return now - self.fleet.last_update

    def apply(self, measurements: Iterable[Measurement], now: int) -> None:
        """Ingest one slot's received measurements.

        Args:
            measurements: Messages delivered at slot ``now``.
            now: The current slot index (must be non-decreasing).
        """
        if now < self._time:
            raise SimulationError(
                f"time went backwards: {now} after {self._time}"
            )
        self._time = now
        fleet = self.fleet
        for measurement in measurements:
            i = measurement.node
            if not 0 <= i < self.num_nodes:
                raise SimulationError(f"unknown node id {i}")
            if measurement.value.shape != (self.dimension,):
                raise SimulationError(
                    f"node {i} sent dimension {measurement.value.shape}, "
                    f"store expects ({self.dimension},)"
                )
            fleet.stored[i] = measurement.value
            fleet.observed[i] = True
            fleet.last_update[i] = now
