"""Transport accounting between local nodes and the central node.

The paper's budget ``B`` is "proportional to the required communication
bandwidth" (Sec. II), so the simulation tracks exactly how many messages
and payload bytes cross the network.  This is the piece an operator would
point at a real message bus; here it is an in-process channel with
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.types import Measurement


@dataclass
class TransportStats:
    """Aggregate transport counters.

    Attributes:
        messages: Total messages delivered.
        payload_floats: Total float values carried (d per message).
        per_node_messages: Message count per node id.
    """

    messages: int = 0
    payload_floats: int = 0
    per_node_messages: Dict[int, int] = field(default_factory=dict)

    def payload_bytes(self, bytes_per_float: int = 8) -> int:
        """Payload volume assuming ``bytes_per_float`` per value."""
        return self.payload_floats * bytes_per_float


class Channel:
    """In-process node → controller channel with delivery accounting."""

    def __init__(self) -> None:
        self.stats = TransportStats()
        self._inbox: List[Measurement] = []

    def send(self, measurement: Measurement) -> None:
        """Deliver one measurement to the controller's inbox."""
        self.stats.messages += 1
        self.stats.payload_floats += measurement.dimension
        per_node = self.stats.per_node_messages
        per_node[measurement.node] = per_node.get(measurement.node, 0) + 1
        self._inbox.append(measurement)

    def drain(self) -> List[Measurement]:
        """Remove and return all pending measurements (one slot's worth)."""
        pending = self._inbox
        self._inbox = []
        return pending

    @property
    def pending(self) -> int:
        return len(self._inbox)
