"""Transport accounting between local nodes and the central node.

The paper's budget ``B`` is "proportional to the required communication
bandwidth" (Sec. II), so the simulation tracks exactly how many messages
and payload bytes cross the network.  This is the piece an operator would
point at a real message bus; here it is an in-process channel with
counters.

Counters are columnar: the per-node message counts live in one int64
array (shareable with :attr:`FleetState.message_counts
<repro.simulation.fleet.FleetState.message_counts>` so the fleet and the
transport layer are literally the same memory), exposed through the
read-only dict-like :class:`PerNodeMessages` view for the historical
``stats.per_node_messages[i]`` API.  All counters advance in exactly one
place — the :class:`Channel` — and the public fields are read-only
properties, so double counting (e.g. a collection engine also bumping
the totals) is an ``AttributeError`` instead of a silent corruption.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional

import numpy as np

from repro.core.types import Measurement
from repro.exceptions import SimulationError


class PerNodeMessages(Mapping):
    """Read-only dict-like view over the per-node message-count column.

    Behaves like the ``{node_id: count}`` dict it replaces: only nodes
    with at least one delivered message appear as keys, it compares
    equal to plain dicts with the same contents, and — like that dict —
    it is *live*: it reads the owning stats' current column on every
    access (not a snapshot), so holding the mapping across sends stays
    correct even when the growable counter array is reallocated.
    """

    def __init__(self, stats: "TransportStats") -> None:
        self._stats = stats

    @property
    def _counts(self) -> np.ndarray:
        return self._stats._node_counts

    def __getitem__(self, node: int) -> int:
        if not (isinstance(node, (int, np.integer)) and
                0 <= node < self._counts.shape[0]):
            raise KeyError(node)
        count = int(self._counts[node])
        if count == 0:
            raise KeyError(node)
        return count

    def __iter__(self) -> Iterator[int]:
        return (int(i) for i in np.flatnonzero(self._counts))

    def __len__(self) -> int:
        return int(np.count_nonzero(self._counts))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (PerNodeMessages, dict)):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        equal = self.__eq__(other)
        return equal if equal is NotImplemented else not equal

    def as_array(self) -> np.ndarray:
        """The backing int64 count column (a copy), shape ``(N,)``."""
        return self._counts.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self))


class TransportStats:
    """Aggregate transport counters (read-only outside the channel).

    Attributes:
        messages: Total messages delivered.
        payload_floats: Total float values carried (d per message).
        per_node_messages: Message count per node id (dict-like view
            over the int64 count column).

    Args:
        node_counts: Optional pre-allocated int64 per-node counter array
            to adopt *without copying* — pass a fleet's
            ``message_counts`` column so transport and fleet share one
            array.  Without it, a small array is allocated and grown on
            demand (node ids are then unbounded, as with the old dict).
        floats_per_message: Payload floats each already-counted message
            carried (``d``).  Required when adopting an array with
            non-zero counts, so ``messages`` and ``payload_floats``
            stay mutually consistent.
    """

    def __init__(
        self,
        node_counts: Optional[np.ndarray] = None,
        *,
        floats_per_message: Optional[int] = None,
    ) -> None:
        self._messages = 0
        self._payload_floats = 0
        # Messages once counted for nodes whose counters have since left
        # the column (fleet compaction): totals stay cumulative, so
        # ``messages == column.sum() + retired`` is the fixed-mode
        # invariant.
        self._retired = 0
        if node_counts is None:
            self._node_counts = np.zeros(16, dtype=np.int64)
            self._fixed = False
        else:
            if node_counts.dtype != np.int64:
                raise SimulationError(
                    f"node_counts must be int64, got {node_counts.dtype}"
                )
            self._node_counts = node_counts
            self._fixed = True
            self._messages = int(node_counts.sum())
            if self._messages:
                if floats_per_message is None:
                    raise SimulationError(
                        "adopting non-zero counters needs "
                        "floats_per_message (use "
                        "TransportStats.from_node_counts) so payload "
                        "accounting stays consistent"
                    )
                self._payload_floats = self._messages * int(
                    floats_per_message
                )

    @property
    def messages(self) -> int:
        """Total messages delivered (advances only via the channel)."""
        return self._messages

    @property
    def payload_floats(self) -> int:
        """Total float values carried (advances only via the channel)."""
        return self._payload_floats

    @property
    def per_node_messages(self) -> PerNodeMessages:
        """Dict-like per-node message counts (a live view)."""
        return PerNodeMessages(self)

    @property
    def retired_messages(self) -> int:
        """Messages counted for nodes no longer in the counter column.

        Non-zero only after fleet compaction (see :meth:`adopt_column`):
        the departed nodes' deliveries stay in the cumulative totals but
        have no per-node counter anymore.
        """
        return self._retired

    def payload_bytes(self, bytes_per_float: int = 8) -> int:
        """Payload volume assuming ``bytes_per_float`` per value."""
        return self._payload_floats * bytes_per_float

    # -- mutation: called by Channel (and shard reduction) only ---------

    def _ensure_node(self, node: int) -> None:
        if node < 0:
            raise SimulationError(f"negative node id {node}")
        if node >= self._node_counts.shape[0]:
            if self._fixed:
                raise SimulationError(
                    f"node id {node} outside the fleet's "
                    f"{self._node_counts.shape[0]} counters"
                )
            grown = np.zeros(
                max(2 * self._node_counts.shape[0], node + 1), dtype=np.int64
            )
            grown[: self._node_counts.shape[0]] = self._node_counts
            self._node_counts = grown

    def _count(self, node: int, floats: int) -> None:
        """Account one delivered message (channel-internal)."""
        self._ensure_node(node)
        self._messages += 1
        self._payload_floats += int(floats)
        self._node_counts[node] += 1

    def _count_batch(
        self, per_node: np.ndarray, floats_per_message: int
    ) -> None:
        """Account a whole batch of deliveries at once (channel-internal)."""
        per_node = np.asarray(per_node, dtype=np.int64)
        self._ensure_node(per_node.shape[0] - 1)
        messages = int(per_node.sum())
        self._messages += messages
        self._payload_floats += messages * int(floats_per_message)
        self._node_counts[: per_node.shape[0]] += per_node

    # -- geometry changes (fleet churn) ---------------------------------

    def adopt_column(self, node_counts: np.ndarray) -> None:
        """Re-adopt the fleet's counter column after a geometry change.

        Fleet churn (:meth:`FleetState.grow
        <repro.simulation.fleet.FleetState.grow>` /
        :meth:`~repro.simulation.fleet.FleetState.compact`) reallocates
        ``message_counts``; fixed stats must follow the new array so
        fleet and transport stay one memory.  Cumulative totals are
        preserved: counts that left the column (departed nodes) move
        into :attr:`retired_messages`, keeping the invariant
        ``messages == column.sum() + retired``.

        Args:
            node_counts: The fleet's new int64 ``message_counts`` column.
        """
        if not self._fixed:
            raise SimulationError(
                "adopt_column applies to fleet-backed (fixed) stats only"
            )
        if node_counts.dtype != np.int64:
            raise SimulationError(
                f"node_counts must be int64, got {node_counts.dtype}"
            )
        live_total = self._messages - self._retired
        new_total = int(node_counts.sum())
        if new_total > live_total:
            raise SimulationError(
                f"new counter column sums to {new_total} messages but "
                f"only {live_total} are live; adopt the fleet's own "
                "column after grow/compact, not an unrelated array"
            )
        self._retired += live_total - new_total
        self._node_counts = node_counts

    def rebind_column(self, node_counts: np.ndarray) -> None:
        """Point fixed stats at a *restored* counter column.

        Unlike :meth:`adopt_column` (churn: cumulative totals preserved,
        counts can only leave the column), this accompanies a whole-state
        restore that replaced the fleet's columns wholesale — the
        zero-copy checkpoint-adoption path, where the column is the
        checkpoint's own array.  Only the binding changes here; callers
        must follow up with :meth:`set_state`, which re-validates the
        totals against the new column, so a rebind without a consistent
        restore still fails loudly.

        Args:
            node_counts: The fleet's adopted int64 ``message_counts``
                column.
        """
        if not self._fixed:
            raise SimulationError(
                "rebind_column applies to fleet-backed (fixed) stats only"
            )
        if node_counts.dtype != np.int64:
            raise SimulationError(
                f"node_counts must be int64, got {node_counts.dtype}"
            )
        self._node_counts = node_counts

    # -- checkpoint state contract --------------------------------------

    def get_state(self) -> dict:
        """Serializable aggregate counters.

        The per-node column is *not* included: when the stats are fixed
        over a fleet's ``message_counts`` column, the fleet's own state
        carries it (one array, one owner); growable standalone stats
        include it explicitly.
        """
        state = {
            "messages": self._messages,
            "payload_floats": self._payload_floats,
            "retired_messages": self._retired,
        }
        if not self._fixed:
            state["node_counts"] = self._node_counts.copy()
        return state

    def set_state(self, state: dict) -> None:
        """Restore counters captured by :meth:`get_state`.

        For fleet-backed stats the node-count column must already hold
        the restored fleet state (restore the fleet first); the totals
        are validated against it so a torn restore fails loudly.
        """
        messages = int(state["messages"])
        retired = int(state.get("retired_messages", 0))
        if self._fixed:
            column_total = int(self._node_counts.sum())
            if messages != column_total + retired:
                raise SimulationError(
                    f"transport state claims {messages} messages "
                    f"({retired} retired) but the fleet's counter column "
                    f"sums to {column_total}; restore the fleet state "
                    "first"
                )
        else:
            counts = np.asarray(state["node_counts"], dtype=np.int64)
            self._node_counts = counts.copy()
        self._messages = messages
        self._retired = retired
        self._payload_floats = int(state["payload_floats"])

    # -- shard reduction ------------------------------------------------

    @classmethod
    def from_node_counts(
        cls, node_counts: np.ndarray, floats_per_message: int
    ) -> "TransportStats":
        """Counters over an existing per-node count column (adopted,
        not copied — pass a fleet's ``message_counts`` to share it).

        This is how sharded runs reduce transport provenance: the merge
        sums each shard's decisions into the global fleet column and
        derives the totals from it here.

        Args:
            node_counts: int64 delivered-message counts, shape ``(N,)``.
            floats_per_message: Payload floats per message (``d``).
        """
        return cls(
            node_counts=node_counts, floats_per_message=floats_per_message
        )


class Channel:
    """In-process node → controller channel with delivery accounting.

    The single place transport counters advance: :meth:`send` for
    per-message delivery, :meth:`record_batch` for vectorized engines
    that compute a whole batch of deliveries in one array operation.

    Args:
        node_counts: Optional per-node counter column to adopt (see
            :class:`TransportStats`).
    """

    def __init__(self, node_counts: Optional[np.ndarray] = None) -> None:
        self.stats = TransportStats(node_counts=node_counts)
        self._inbox: List[Measurement] = []

    def send(self, measurement: Measurement) -> None:
        """Deliver one measurement to the controller's inbox."""
        self.stats._count(measurement.node, measurement.dimension)
        self._inbox.append(measurement)

    def record_batch(
        self, per_node: np.ndarray, floats_per_message: int
    ) -> None:
        """Account a batch of already-applied deliveries.

        Used by the vectorized collection fast path, whose messages
        never materialize as :class:`Measurement` objects; nothing is
        enqueued, only the counters advance (exactly as ``send`` would
        have, message by message).

        Args:
            per_node: Per-node delivered-message counts, shape ``(n,)``.
            floats_per_message: Payload floats per message (``d``).
        """
        self.stats._count_batch(per_node, floats_per_message)

    def record_deliveries(
        self,
        delivered_ids: np.ndarray,
        num_nodes: int,
        floats_per_message: int,
    ) -> np.ndarray:
        """Account one slot's *delivered* messages by node id.

        The single choke point between "these messages reached the
        controller" and the counters: callers hand over the delivered
        node ids (at most one message per node per slot) and this
        method builds the per-node count vector and advances the stats
        exactly once.  Link models drop or delay messages *before* this
        call, so a dropped message can never be counted and a delayed
        one is counted only when its late arrival is actually applied.

        Args:
            delivered_ids: Node ids whose message was delivered this
                slot (unique).
            num_nodes: Fleet size ``N`` (the count vector's length).
            floats_per_message: Payload floats per message (``d``).

        Returns:
            The int64 ``(N,)`` per-node delivered-message counts.
        """
        counts = np.zeros(int(num_nodes), dtype=np.int64)
        counts[delivered_ids] = 1
        self.stats._count_batch(counts, floats_per_message)
        return counts

    def drain(self) -> List[Measurement]:
        """Remove and return all pending measurements (one slot's worth)."""
        pending = self._inbox
        self._inbox = []
        return pending

    @property
    def pending(self) -> int:
        return len(self._inbox)
