"""Measurement-collection simulation (transmission stage only).

Two equivalent engines are provided:

* :class:`CollectionSimulation` — object-level: real
  :class:`~repro.simulation.node.LocalNode` instances, a
  :class:`~repro.simulation.transport.Channel`, and a
  :class:`~repro.simulation.controller.CentralStore`.  This is the
  faithful distributed-system model with full transport accounting.
* :func:`simulate_adaptive_collection` / :func:`simulate_uniform_collection`
  — vectorized: the same decision rules applied across all nodes with
  numpy, used by the large parameter sweeps in the benchmark harness.
  A property test asserts both engines produce identical decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.config import TransmissionConfig
from repro.core.types import validate_trace
from repro.exceptions import ConfigurationError
from repro.simulation.controller import CentralStore
from repro.simulation.node import LocalNode
from repro.simulation.transport import Channel, TransportStats
from repro.transmission.adaptive import AdaptiveTransmissionPolicy
from repro.transmission.base import TransmissionPolicy
from repro.transmission.uniform import UniformTransmissionPolicy


@dataclass
class CollectionResult:
    """Outcome of running a collection simulation over a full trace.

    Attributes:
        stored: Array ``(T, N, d)``: the controller's ``z_t`` after each
            slot.
        decisions: Binary array ``(T, N)`` of transmissions ``β_{i,t}``.
        stats: Transport counters (None for the vectorized engines).
    """

    stored: np.ndarray
    decisions: np.ndarray
    stats: Optional[TransportStats] = None

    @property
    def empirical_frequency(self) -> float:
        """Overall fraction of node-slots with a transmission."""
        return float(self.decisions.mean())

    def per_node_frequency(self) -> np.ndarray:
        """Per-node empirical transmission frequency, shape ``(N,)``."""
        return self.decisions.mean(axis=0)


class CollectionSimulation:
    """Object-level collection simulation.

    Args:
        num_nodes: Number of local nodes.
        policy_factory: Called with each node id; returns that node's
            transmission policy (lets callers stagger phases, vary
            budgets per node, etc.).
    """

    def __init__(
        self,
        num_nodes: int,
        policy_factory: Callable[[int], TransmissionPolicy],
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        self.nodes = [LocalNode(i, policy_factory(i)) for i in range(num_nodes)]
        self.channel = Channel()

    def run(self, trace: np.ndarray) -> CollectionResult:
        """Run the full trace through the nodes and central store.

        Args:
            trace: Shape ``(T, N)`` or ``(T, N, d)`` true measurements.

        Returns:
            The :class:`CollectionResult` with stored values per slot.
        """
        data = validate_trace(trace)
        num_steps, num_nodes, dim = data.shape
        if num_nodes != len(self.nodes):
            raise ConfigurationError(
                f"trace has {num_nodes} nodes, simulation has {len(self.nodes)}"
            )
        store = CentralStore(num_nodes, dim)
        stored = np.empty_like(data)
        decisions = np.zeros((num_steps, num_nodes), dtype=int)
        for t in range(num_steps):
            for node in self.nodes:
                message = node.observe(data[t, node.node_id])
                if message is not None:
                    self.channel.send(message)
                    decisions[t, node.node_id] = 1
            store.apply(self.channel.drain(), now=t)
            stored[t] = store.values
        return CollectionResult(
            stored=stored, decisions=decisions, stats=self.channel.stats
        )


def _prepare(trace: np.ndarray) -> Tuple[np.ndarray, int, int, int]:
    data = validate_trace(trace)
    num_steps, num_nodes, dim = data.shape
    return data, num_steps, num_nodes, dim


def simulate_adaptive_collection(
    trace: np.ndarray,
    config: TransmissionConfig = TransmissionConfig(),
) -> CollectionResult:
    """Vectorized Lyapunov adaptive collection over a full trace.

    Matches :class:`AdaptiveTransmissionPolicy` exactly, including the
    forced first-slot transmission performed by
    :class:`~repro.simulation.node.LocalNode`.
    """
    data, num_steps, num_nodes, _ = _prepare(trace)
    budget = config.budget
    queues = np.zeros(num_nodes)
    stored_now = data[0].copy()
    stored = np.empty_like(data)
    decisions = np.zeros((num_steps, num_nodes), dtype=int)

    # Slot 0: forced transmissions, charged to the budget (penalty F=0 so
    # the policy itself would choose to skip; the node forces the send).
    decisions[0, :] = 1
    stored[0] = stored_now
    queues += 1.0 - budget

    for t in range(1, num_steps):
        v_t = config.v0 * (t + 1) ** config.gamma
        penalty = np.mean((stored_now - data[t]) ** 2, axis=1)
        transmit = queues < v_t * penalty
        stored_now = np.where(transmit[:, np.newaxis], data[t], stored_now)
        queues += transmit.astype(float) - budget
        decisions[t] = transmit
        stored[t] = stored_now
    return CollectionResult(stored=stored, decisions=decisions)


def simulate_uniform_collection(
    trace: np.ndarray,
    budget: float,
    *,
    stagger: bool = True,
    seed: int = 0,
) -> CollectionResult:
    """Vectorized uniform-sampling collection over a full trace.

    Args:
        trace: True measurements ``(T, N[, d])``.
        budget: Fixed per-node transmission frequency B.
        stagger: Give each node a random phase so the fleet does not
            transmit in lock-step (matches the practical deployment and
            the object-level engine's ``phase`` parameter).
        seed: RNG seed for phases.
    """
    if not 0.0 < budget <= 1.0:
        raise ConfigurationError(f"budget must be in (0, 1], got {budget}")
    data, num_steps, num_nodes, _ = _prepare(trace)
    rng = np.random.default_rng(seed)
    accumulator = (
        rng.uniform(0.0, 1.0, size=num_nodes) if stagger else np.zeros(num_nodes)
    )
    stored_now = data[0].copy()
    stored = np.empty_like(data)
    decisions = np.zeros((num_steps, num_nodes), dtype=int)
    decisions[0, :] = 1  # forced initial transmission
    stored[0] = stored_now
    for t in range(1, num_steps):
        accumulator += budget
        transmit = accumulator >= 1.0
        accumulator[transmit] -= 1.0
        stored_now = np.where(transmit[:, np.newaxis], data[t], stored_now)
        decisions[t] = transmit
        stored[t] = stored_now
    return CollectionResult(stored=stored, decisions=decisions)
