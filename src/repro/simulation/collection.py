"""Measurement-collection simulation (transmission stage only).

Two equivalent engines are provided:

* :class:`CollectionSimulation` — object-level: real
  :class:`~repro.simulation.node.LocalNode` instances, a
  :class:`~repro.simulation.transport.Channel`, and a
  :class:`~repro.simulation.controller.CentralStore`.  This is the
  faithful distributed-system model with full transport accounting.
* :func:`simulate_adaptive_collection` / :func:`simulate_uniform_collection`
  — vectorized: the same decision rules applied across all nodes with
  numpy, used by the large parameter sweeps in the benchmark harness.
  A property test asserts both engines produce identical decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.config import TransmissionConfig
from repro.core.types import validate_trace
from repro.exceptions import ConfigurationError
from repro.registry import COLLECTION_BACKENDS, register_collection_backend
from repro.simulation.controller import CentralStore
from repro.simulation.fleet import FleetState
from repro.simulation.transport import Channel, TransportStats
from repro.transmission.adaptive import (
    AdaptiveTransmissionPolicy,
    adaptive_transmit_slot,
)
from repro.transmission.base import TransmissionPolicy
from repro.transmission.uniform import (
    UniformTransmissionPolicy,
    uniform_transmit_slot,
)


@dataclass
class CollectionResult:
    """Outcome of running a collection simulation over a full trace.

    Attributes:
        stored: Array ``(T, N, d)``: the controller's ``z_t`` after each
            slot.
        decisions: Binary array ``(T, N)`` of transmissions ``β_{i,t}``.
        stats: Transport counters (None for the vectorized engines).
    """

    stored: np.ndarray
    decisions: np.ndarray
    stats: Optional[TransportStats] = None

    @property
    def empirical_frequency(self) -> float:
        """Overall fraction of node-slots with a transmission."""
        return float(self.decisions.mean())

    def per_node_frequency(self) -> np.ndarray:
        """Per-node empirical transmission frequency, shape ``(N,)``."""
        return self.decisions.mean(axis=0)


class CollectionSimulation:
    """Object-level collection simulation.

    When every node runs the same *kind* of policy (all adaptive or all
    uniform — per-node budgets, control parameters and phases may still
    differ), :meth:`run` dispatches to a vectorized engine that computes
    all nodes' decisions with whole-fleet array operations and then
    fast-forwards the node/policy/transport objects to the exact state a
    slot-by-slot run would have produced.  Heterogeneous or custom
    policies fall back to the faithful per-node object loop.

    Args:
        num_nodes: Number of local nodes.
        policy_factory: Called with each node id; returns that node's
            transmission policy (lets callers stagger phases, vary
            budgets per node, etc.).
    """

    def __init__(
        self,
        num_nodes: int,
        policy_factory: Callable[[int], TransmissionPolicy],
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        self.fleet = FleetState(num_nodes)
        # One counter array from transport to fleet: the channel's stats
        # are backed by the fleet's message_counts column.
        self.channel = Channel(node_counts=self.fleet.message_counts)
        self.nodes = [
            self.fleet.node_view(i, policy_factory(i))
            for i in range(num_nodes)
        ]

    def run(self, trace: np.ndarray) -> CollectionResult:
        """Run the full trace through the nodes and central store.

        Args:
            trace: Shape ``(T, N)`` or ``(T, N, d)`` true measurements.

        Returns:
            The :class:`CollectionResult` with stored values per slot.
        """
        data = validate_trace(trace)
        num_nodes = data.shape[1]
        if num_nodes != len(self.nodes):
            raise ConfigurationError(
                f"trace has {num_nodes} nodes, simulation has {len(self.nodes)}"
            )
        if self._batchable():
            return self._run_batched(data)
        return self._run_object_loop(data)

    def _batchable(self) -> bool:
        """True when the fleet can be advanced with array operations.

        Requires a fresh start (no node has observed anything, nothing
        in flight) and a homogeneous policy *type* across the fleet —
        exactly :class:`AdaptiveTransmissionPolicy` or exactly
        :class:`UniformTransmissionPolicy` (subclasses may override
        behavior the vectorized recurrences would not reproduce).
        """
        if any(node.time != 0 for node in self.nodes):
            return False
        if any(node.policy.decisions.size != 0 for node in self.nodes):
            return False
        if self.channel.pending:
            return False
        policy_types = {type(node.policy) for node in self.nodes}
        return policy_types in (
            {AdaptiveTransmissionPolicy},
            {UniformTransmissionPolicy},
        )

    def _run_object_loop(self, data: np.ndarray) -> CollectionResult:
        """Faithful slot-by-slot, node-by-node simulation."""
        num_steps, num_nodes, dim = data.shape
        # The store views the shared fleet columns, so continuation runs
        # (nodes that already observed earlier slots) see the carried
        # mirrors automatically: silent nodes keep reporting their last
        # transmitted value instead of a zero initialization.
        store = CentralStore(dimension=dim, fleet=self.fleet)
        stored = np.empty_like(data)
        decisions = np.zeros((num_steps, num_nodes), dtype=int)
        # Apply on the fleet clock (nodes advance in lock-step here), so
        # the store's last_update writes agree with the node views' and
        # continuation runs keep one time base.
        base = int(self.fleet.times.max())
        for t in range(num_steps):
            # repro: noqa KER-003(object-path reference loop, kept as the equivalence oracle)
            for node in self.nodes:
                message = node.observe(data[t, node.node_id])
                if message is not None:
                    self.channel.send(message)
                    decisions[t, node.node_id] = 1
            store.apply(self.channel.drain(), now=base + t)
            stored[t] = store.values
        return CollectionResult(
            stored=stored, decisions=decisions, stats=self.channel.stats
        )

    def _run_batched(self, data: np.ndarray) -> CollectionResult:
        """Whole-fleet vectorized run with object-state fast-forward."""
        num_steps, num_nodes, dim = data.shape
        policies = [node.policy for node in self.nodes]
        if isinstance(policies[0], AdaptiveTransmissionPolicy):
            budgets = np.array([p.config.budget for p in policies])
            v0s = np.array([p.config.v0 for p in policies])
            gammas = np.array([p.config.gamma for p in policies])
            stored, decisions, queue_samples, queues = _adaptive_recurrence(
                data, budgets, v0s, gammas
            )
            # repro: noqa KER-003(one-shot fast-forward of object policies, off the hot path)
            for i, policy in enumerate(policies):
                policy.sync_batch(
                    decisions[:, i], queue_samples[:, i], queues[i]
                )
        else:
            budgets = np.array([p.budget for p in policies])
            phases = np.array([p.phase for p in policies])
            stored, decisions, accumulator = _uniform_recurrence(
                data, budgets, phases
            )
            # repro: noqa KER-003(one-shot fast-forward of object policies, off the hot path)
            for i, policy in enumerate(policies):
                policy.sync_batch(decisions[:, i], accumulator[i])

        # Transport accounting identical to per-message Channel.send —
        # counters advance only through the channel.
        self.channel.record_batch(decisions.sum(axis=0), dim)
        # Columnar fast-forward: clocks, mirrors, last-transmit slots
        # and the policy-accumulator column in whole-fleet array ops.
        self.fleet.advance_batch(decisions, stored[-1])
        if isinstance(policies[0], AdaptiveTransmissionPolicy):
            self.fleet.policy_state[:] = queues
        else:
            self.fleet.policy_state[:] = accumulator
        return CollectionResult(
            stored=stored, decisions=decisions, stats=self.channel.stats
        )


def _prepare(trace: np.ndarray) -> Tuple[np.ndarray, int, int, int]:
    data = validate_trace(trace)
    num_steps, num_nodes, dim = data.shape
    return data, num_steps, num_nodes, dim


def _adaptive_recurrence(
    data: np.ndarray,
    budgets: np.ndarray,
    v0s: np.ndarray,
    gammas: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fleet-wide Lyapunov drift-plus-penalty recurrence.

    Iterates :func:`~repro.transmission.adaptive.adaptive_transmit_slot`
    — the same batched kernel streaming sessions run per slot — over a
    whole trace.  Per-node budgets and control parameters are supported,
    and the forced first-slot transmission is charged exactly as
    :meth:`~repro.transmission.adaptive.AdaptiveTransmissionPolicy.
    first_transmission` does.

    Returns:
        ``(stored, decisions, queue_samples, queues)`` where
        ``queue_samples[t]`` holds ``Q_i(t)`` sampled before slot ``t``'s
        decision and ``queues`` is the final post-run queue vector.
    """
    num_steps, num_nodes, dim = data.shape
    stored = np.empty_like(data)
    decisions = np.zeros((num_steps, num_nodes), dtype=int)
    # Policy accumulators run in the trace's dtype so a float32 pipeline
    # never silently upcasts its hot-loop state.
    queue_samples = np.empty((num_steps, num_nodes), dtype=data.dtype)
    queues = np.zeros(num_nodes, dtype=data.dtype)
    observed = np.zeros(num_nodes, dtype=bool)
    stored_now = np.zeros_like(data[0])

    for t in range(num_steps):
        queue_samples[t] = queues
        transmit = adaptive_transmit_slot(
            data[t], stored_now, observed, queues, t, budgets, v0s, gammas
        )
        stored_now = np.where(transmit[:, np.newaxis], data[t], stored_now)
        observed |= transmit
        decisions[t] = transmit
        stored[t] = stored_now
    return stored, decisions, queue_samples, queues


def _uniform_recurrence(
    data: np.ndarray, budgets: np.ndarray, phases: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fleet-wide error-diffusion uniform-sampling recurrence.

    Iterates :func:`~repro.transmission.uniform.uniform_transmit_slot`
    over a whole trace.

    Returns:
        ``(stored, decisions, accumulator)`` with the final per-node
        accumulator state.
    """
    num_steps, num_nodes, _ = data.shape
    accumulator = np.asarray(phases, dtype=data.dtype).copy()
    observed = np.zeros(num_nodes, dtype=bool)
    stored_now = np.zeros_like(data[0])
    stored = np.empty_like(data)
    decisions = np.zeros((num_steps, num_nodes), dtype=int)
    for t in range(num_steps):
        transmit = uniform_transmit_slot(observed, accumulator, budgets)
        stored_now = np.where(transmit[:, np.newaxis], data[t], stored_now)
        observed |= transmit
        decisions[t] = transmit
        stored[t] = stored_now
    return stored, decisions, accumulator


def simulate_adaptive_collection(
    trace: np.ndarray,
    config: TransmissionConfig = TransmissionConfig(),
) -> CollectionResult:
    """Vectorized Lyapunov adaptive collection over a full trace.

    Matches :class:`AdaptiveTransmissionPolicy` exactly, including the
    forced first-slot transmission performed by
    :class:`~repro.simulation.node.LocalNode`.
    """
    data, _, num_nodes, _ = _prepare(trace)
    stored, decisions, _, _ = _adaptive_recurrence(
        data,
        np.full(num_nodes, config.budget, dtype=data.dtype),
        np.full(num_nodes, config.v0, dtype=data.dtype),
        np.full(num_nodes, config.gamma, dtype=data.dtype),
    )
    return CollectionResult(stored=stored, decisions=decisions)


def simulate_uniform_collection(
    trace: np.ndarray,
    budget: float,
    *,
    stagger: bool = True,
    seed: int = 0,
    node_offset: int = 0,
    total_nodes: Optional[int] = None,
) -> CollectionResult:
    """Vectorized uniform-sampling collection over a full trace.

    Args:
        trace: True measurements ``(T, N[, d])``.
        budget: Fixed per-node transmission frequency B.
        stagger: Give each node a random phase so the fleet does not
            transmit in lock-step (matches the practical deployment and
            the object-level engine's ``phase`` parameter).
        seed: RNG seed for phases.
        node_offset: First node's index within the whole fleet — used by
            sharded execution, where ``trace`` is a contiguous node
            slice, so each node keeps the exact phase it would draw in a
            single-shard run.
        total_nodes: Whole-fleet size the phases are drawn for (defaults
            to the trace's own node count).
    """
    if not 0.0 < budget <= 1.0:
        raise ConfigurationError(f"budget must be in (0, 1], got {budget}")
    data, _, num_nodes, _ = _prepare(trace)
    total = num_nodes if total_nodes is None else int(total_nodes)
    if not 0 <= node_offset <= total - num_nodes:
        raise ConfigurationError(
            f"node_offset {node_offset} with {num_nodes} nodes exceeds "
            f"total_nodes {total}"
        )
    if stagger:
        # Draw the whole fleet's phases and slice, so a shard's phases
        # are bit-identical to its columns of the single-shard draw.
        # repro: noqa KER-001(seeded generator; the draw is a pure function of config)
        phases = np.random.default_rng(seed).uniform(0.0, 1.0, size=total)[
            node_offset : node_offset + num_nodes
        ]
    else:
        phases = np.zeros(num_nodes)
    stored, decisions, _ = _uniform_recurrence(
        data, np.full(num_nodes, budget, dtype=data.dtype), phases
    )
    return CollectionResult(stored=stored, decisions=decisions)


# ----------------------------------------------------------------------
# Registry-driven backend dispatch
# ----------------------------------------------------------------------


@register_collection_backend("adaptive")
def _collect_adaptive(
    trace: np.ndarray, config: TransmissionConfig
) -> CollectionResult:
    return simulate_adaptive_collection(trace, config)


@register_collection_backend("uniform")
def _collect_uniform(
    trace: np.ndarray,
    config: TransmissionConfig,
    *,
    node_offset: int = 0,
    total_nodes: Optional[int] = None,
) -> CollectionResult:
    return simulate_uniform_collection(
        trace,
        config.budget,
        node_offset=node_offset,
        total_nodes=total_nodes,
    )


@register_collection_backend("perfect")
def _collect_perfect(
    trace: np.ndarray, config: TransmissionConfig
) -> CollectionResult:
    # No staleness: every node transmits every slot (B = 1).
    data = validate_trace(trace)
    return CollectionResult(
        stored=data.copy(),
        decisions=np.ones(data.shape[:2], dtype=int),
    )


def collect(
    trace: np.ndarray,
    config: TransmissionConfig = TransmissionConfig(),
    *,
    backend: str = "adaptive",
) -> CollectionResult:
    """Run a named collection backend over a recorded trace.

    Args:
        trace: True measurements, shape ``(T, N)`` or ``(T, N, d)``.
        config: Transmission parameters consumed by the backend
            (``adaptive`` uses all of them, ``uniform`` the budget,
            ``deadband`` the deadband width, ``perfect`` none).
        backend: A name registered in
            :data:`repro.registry.COLLECTION_BACKENDS`.

    Returns:
        The backend's :class:`CollectionResult`.
    """
    return COLLECTION_BACKENDS.create(backend, trace, config)
