"""Persistent shard workers over POSIX shared memory.

The historical multi-process collection path
(``Engine.run(..., workers=W)`` before this module) pickled every
shard's trace slice into a fresh ``ProcessPoolExecutor`` task and
pickled the results back — at N=1M that serializes gigabytes per run.
:class:`ShardPool` replaces that with *persistent* worker processes and
``multiprocessing.shared_memory``:

* the trace and both result columns (``stored``, ``decisions``) live in
  named shared-memory segments, written once and mapped zero-copy by
  every worker;
* workers are spawned once per pool and service any number of shard
  requests over a lightweight command pipe — a request names a
  contiguous node range ``[lo, hi)``, never carries array data;
* each worker writes its shard's results directly into the shared
  output columns, so the parent's merge is a single ``np.array`` copy
  out of the segment (no concatenation, no pickling).

The arithmetic is exactly the in-process sharded path's: every backend
runs on a contiguous node slice of the same trace with the same
shard-aware kwargs, so pooled results are bit-identical to
``shards=1`` for every registered backend and both dtypes.
"""

from __future__ import annotations

import inspect
import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TransmissionConfig
from repro.exceptions import ConfigurationError, SimulationError
from repro.registry import COLLECTION_BACKENDS


def shard_aware_kwargs(
    backend: Any, node_offset: int, total_nodes: int
) -> dict:
    """Offset/fleet-size kwargs for backends that opt into them.

    Backends whose decisions depend on fleet-global state (the uniform
    backend draws stagger phases for the whole fleet) declare
    ``node_offset``/``total_nodes`` keyword parameters; purely per-node
    backends need nothing and get nothing.
    """
    try:
        params = inspect.signature(backend).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return {}
    if "node_offset" in params and "total_nodes" in params:
        return {"node_offset": node_offset, "total_nodes": total_nodes}
    return {}


def _attach(name: str, unregister: bool) -> shared_memory.SharedMemory:
    """Attach an existing segment without tracker double-accounting.

    Before Python 3.13 an *attach* (``create=False``) still registers
    the segment with the process's resource tracker.  Under ``spawn``
    the worker runs its *own* tracker, which would unlink the parent's
    segment when the worker exits — so the registration is dropped
    right after attaching.  Under ``fork`` parent and worker share one
    tracker; registering into a set is idempotent there and
    unregistering would strip the parent's own entry, so the
    registration is left alone.
    """
    segment = shared_memory.SharedMemory(name=name)
    if unregister:
        try:  # pragma: no cover - depends on the Python version
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    return segment


def _as_view(
    segment: shared_memory.SharedMemory,
    shape: Tuple[int, ...],
    dtype: str,
) -> np.ndarray:
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


def _worker_main(conn, own_tracker: bool) -> None:
    """Worker loop: attach → collect ranges → detach, until ``stop``.

    Commands arrive as ``(verb, payload)`` tuples; every command gets
    exactly one ``("ok", result)`` or ``("error", message)`` reply, so
    the parent can strictly pair requests with responses.
    """
    segments: List[shared_memory.SharedMemory] = []
    trace = stored = decisions = None
    backend = None
    backend_kwargs: dict = {}
    transmission: Optional[TransmissionConfig] = None
    while True:
        try:
            verb, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if verb == "attach":
                segments = [
                    _attach(payload["trace"][0], own_tracker),
                    _attach(payload["stored"][0], own_tracker),
                    _attach(payload["decisions"][0], own_tracker),
                ]
                trace = _as_view(segments[0], *payload["trace"][1:])
                stored = _as_view(segments[1], *payload["stored"][1:])
                decisions = _as_view(segments[2], *payload["decisions"][1:])
                backend = COLLECTION_BACKENDS.get(payload["backend"])
                transmission = payload["transmission"]
                backend_kwargs = {"total_nodes": payload["total_nodes"]}
                conn.send(("ok", None))
            elif verb == "collect":
                if trace is None:
                    raise SimulationError("collect before attach")
                done = 0
                for lo, hi in payload:
                    kwargs = shard_aware_kwargs(
                        backend, lo, backend_kwargs["total_nodes"]
                    )
                    result = backend(trace[:, lo:hi], transmission, **kwargs)
                    stored[:, lo:hi] = result.stored
                    decisions[:, lo:hi] = result.decisions
                    done += 1
                conn.send(("ok", done))
            elif verb == "detach":
                for segment in segments:
                    segment.close()
                segments = []
                trace = stored = decisions = None
                conn.send(("ok", None))
            elif verb == "stop":
                for segment in segments:
                    segment.close()
                conn.send(("ok", None))
                break
            else:
                raise SimulationError(f"unknown pool command {verb!r}")
        except Exception as exc:  # reply, don't die: the pool outlives it
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class ShardPool:
    """Persistent collection workers sharing trace/result memory.

    A pool spawns its workers once and reuses them across any number of
    :meth:`collect` calls; per call, the trace is published to shared
    memory once and each worker services its queue of node-range
    requests zero-copy.  Use as a context manager, or call
    :meth:`close` explicitly::

        with ShardPool(workers=4) as pool:
            stored, decisions = pool.collect(
                "adaptive", data, config.transmission, shards=16
            )

    Args:
        workers: Number of persistent worker processes, >= 1.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        context = mp.get_context(method)
        if method == "fork":
            # Start the resource tracker *before* forking so workers
            # inherit it: their attach-side registrations then land in
            # the parent's tracker (idempotent set adds) instead of
            # spawning one private tracker per worker that warns about
            # "leaked" segments it never owned.
            try:  # pragma: no cover - private but stable since 3.8
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:
                pass
        self._conns = []
        self._procs = []
        for _ in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_main,
                # Spawned workers run their own resource tracker and
                # must drop attach-side registrations (see _attach).
                args=(child_conn, method == "spawn"),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker and release the pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop", None))
                conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- command plumbing ----------------------------------------------

    def _broadcast(
        self, verb: str, payload: Any, *, strict: bool = True
    ) -> None:
        errors = []
        for conn in self._conns:
            try:
                conn.send((verb, payload))
            except (OSError, BrokenPipeError) as exc:
                errors.append(repr(exc))
        for conn in self._conns:
            try:
                status, result = conn.recv()
            except (EOFError, OSError) as exc:
                status, result = "error", repr(exc)
            if status != "ok":
                errors.append(str(result))
        if errors and strict:
            raise SimulationError(
                f"shard worker failed {verb}: {errors[0]}"
            )

    # -- the one real operation ----------------------------------------

    def collect(
        self,
        backend_name: str,
        data: np.ndarray,
        transmission: TransmissionConfig,
        ranges: Sequence[Tuple[int, int]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the collection backend over node ranges, in the pool.

        Args:
            backend_name: Registered collection backend name.
            data: Validated trace, shape ``(T, N, d)`` (any float
                dtype; workers compute in the trace's dtype).
            transmission: Transmission config for the backend.
            ranges: Contiguous node ranges ``[lo, hi)`` covering the
                fleet (from :func:`~repro.simulation.fleet.
                shard_slices`); range ``k`` goes to worker
                ``k % workers``, so each worker services its queue of
                requests over the same attached segments.

        Returns:
            ``(stored, decisions)`` for the whole fleet — bit-identical
            to the in-process sharded run.
        """
        if self._closed:
            raise SimulationError("ShardPool is closed")
        # Fail fast in the parent (with suggestions) before any worker
        # sees the name.
        COLLECTION_BACKENDS.get(backend_name)
        data = np.ascontiguousarray(data)
        if data.ndim != 3:
            raise SimulationError(
                f"pool trace must be (T, N, d), got {data.shape}"
            )
        num_steps, num_nodes, dim = data.shape
        decisions_dtype = np.dtype(bool)
        segments = []
        try:
            # repro: noqa KER-003(three fixed segments, not a node loop)
            for nbytes in (
                data.nbytes,
                data.nbytes,
                num_steps * num_nodes * decisions_dtype.itemsize,
            ):
                segments.append(
                    shared_memory.SharedMemory(
                        create=True, size=max(1, nbytes)
                    )
                )
            trace_seg, stored_seg, decisions_seg = segments
            _as_view(trace_seg, data.shape, data.dtype.name)[:] = data
            self._broadcast(
                "attach",
                {
                    "trace": (trace_seg.name, data.shape, data.dtype.name),
                    "stored": (stored_seg.name, data.shape, data.dtype.name),
                    "decisions": (
                        decisions_seg.name,
                        (num_steps, num_nodes),
                        decisions_dtype.name,
                    ),
                    "backend": backend_name,
                    "transmission": transmission,
                    "total_nodes": num_nodes,
                },
            )
            try:
                queues: List[List[Tuple[int, int]]] = [
                    [] for _ in range(self.workers)
                ]
                for k, (lo, hi) in enumerate(ranges):
                    queues[k % self.workers].append((int(lo), int(hi)))
                active = [
                    (conn, queue)
                    for conn, queue in zip(self._conns, queues)
                    if queue
                ]
                for conn, queue in active:
                    conn.send(("collect", queue))
                errors = []
                for conn, _ in active:
                    try:
                        status, result = conn.recv()
                    except (EOFError, OSError) as exc:
                        status, result = "error", repr(exc)
                    if status != "ok":
                        errors.append(str(result))
                if errors:
                    raise SimulationError(
                        f"shard worker failed collect: {errors[0]}"
                    )
                stored = np.array(
                    _as_view(stored_seg, data.shape, data.dtype.name)
                )
                decisions = np.array(
                    _as_view(
                        decisions_seg,
                        (num_steps, num_nodes),
                        decisions_dtype.name,
                    )
                )
            finally:
                # Never mask a collect error with a detach failure.
                self._broadcast("detach", None, strict=False)
            return stored, decisions
        finally:
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


__all__ = ["ShardPool", "shard_aware_kwargs"]
