"""Persistent shard workers over POSIX shared memory.

The historical multi-process collection path
(``Engine.run(..., workers=W)`` before this module) pickled every
shard's trace slice into a fresh ``ProcessPoolExecutor`` task and
pickled the results back — at N=1M that serializes gigabytes per run.
:class:`ShardPool` replaces that with *persistent* worker processes and
``multiprocessing.shared_memory``:

* the trace and both result columns (``stored``, ``decisions``) live in
  named shared-memory segments, written once and mapped zero-copy by
  every worker;
* workers are spawned once per pool and service any number of shard
  requests over a lightweight command pipe — a request names a
  contiguous node range ``[lo, hi)``, never carries array data;
* each worker writes its shard's results directly into the shared
  output columns, so the parent's merge is a single ``np.array`` copy
  out of the segment (no concatenation, no pickling).

The arithmetic is exactly the in-process sharded path's: every backend
runs on a contiguous node slice of the same trace with the same
shard-aware kwargs, so pooled results are bit-identical to
``shards=1`` for every registered backend and both dtypes.
"""

from __future__ import annotations

import inspect
import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TransmissionConfig
from repro.exceptions import ConfigurationError, SimulationError
from repro.registry import COLLECTION_BACKENDS

#: Guard-canary geometry (``ShardPool(guard=True)``): each segment is
#: padded with one canary block on each side of the payload, filled
#: with a generation-salted 64-bit pattern and re-verified after every
#: collect — an out-of-range shard write tears the pattern.
_GUARD_WORDS = 8
_GUARD_NBYTES = _GUARD_WORDS * 8
_CANARY_SEED = 0x9E3779B97F4A7C15


def shm_range_owner(ranges: str):
    """Declare a function the owner of its assigned shm node ranges.

    The shared-memory lint (``SHM-002``) flags writes into attached
    segments unless the writer declares which ranges it owns and why
    overlapping writers cannot race.  The declaration is load-bearing
    documentation: the runtime sanitizer (``repro lint --sanitize``)
    stresses exactly this claim with guard canaries.
    """

    def mark(func):
        func.__shm_range_owner__ = ranges
        return func

    return mark


def shard_aware_kwargs(
    backend: Any, node_offset: int, total_nodes: int
) -> dict:
    """Offset/fleet-size kwargs for backends that opt into them.

    Backends whose decisions depend on fleet-global state (the uniform
    backend draws stagger phases for the whole fleet) declare
    ``node_offset``/``total_nodes`` keyword parameters; purely per-node
    backends need nothing and get nothing.
    """
    try:
        params = inspect.signature(backend).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return {}
    if "node_offset" in params and "total_nodes" in params:
        return {"node_offset": node_offset, "total_nodes": total_nodes}
    return {}


def _attach(name: str, unregister: bool) -> shared_memory.SharedMemory:
    """Attach an existing segment without tracker double-accounting.

    Before Python 3.13 an *attach* (``create=False``) still registers
    the segment with the process's resource tracker.  Under ``spawn``
    the worker runs its *own* tracker, which would unlink the parent's
    segment when the worker exits — so the registration is dropped
    right after attaching.  Under ``fork`` parent and worker share one
    tracker; registering into a set is idempotent there and
    unregistering would strip the parent's own entry, so the
    registration is left alone.
    """
    segment = shared_memory.SharedMemory(name=name)
    if unregister:
        try:  # pragma: no cover - depends on the Python version
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    return segment


def _as_view(
    segment: shared_memory.SharedMemory,
    shape: Tuple[int, ...],
    dtype: str,
    offset: int = 0,
) -> np.ndarray:
    return np.ndarray(
        shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
    )


def _canary(generation: int) -> np.ndarray:
    """The 64-bit guard pattern for one collect generation."""
    word = np.uint64(_CANARY_SEED) ^ np.uint64(generation)
    return np.full(_GUARD_WORDS, word, dtype=np.uint64)


def _guard_views(
    segment: shared_memory.SharedMemory, nbytes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Head and tail canary blocks bracketing a guarded payload."""
    head = _as_view(segment, (_GUARD_WORDS,), "uint64", 0)
    tail = _as_view(segment, (_GUARD_WORDS,), "uint64", _GUARD_NBYTES + nbytes)
    return head, tail


@shm_range_owner(
    "writes stored/decisions only inside the [lo, hi) ranges of its own "
    "collect queue; the parent assigns disjoint ranges round-robin"
)
def _worker_main(conn, own_tracker: bool) -> None:
    """Worker loop: attach → collect ranges → detach, until ``stop``.

    Commands arrive as ``(verb, payload)`` tuples; every command gets
    exactly one ``("ok", result)`` or ``("error", message)`` reply, so
    the parent can strictly pair requests with responses.
    """
    segments: List[shared_memory.SharedMemory] = []
    trace = stored = decisions = None
    backend = None
    backend_kwargs: dict = {}
    transmission: Optional[TransmissionConfig] = None
    while True:
        try:
            verb, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if verb == "attach":
                # A re-attach (new collect) must not leak the previous
                # generation's mappings.
                for segment in segments:
                    segment.close()
                segments = []
                trace = stored = decisions = None
                attached: List[shared_memory.SharedMemory] = []
                try:
                    for key in ("trace", "stored", "decisions"):
                        attached.append(
                            _attach(payload[key][0], own_tracker)
                        )
                except Exception:
                    # Partial attach: close what did map, or the failed
                    # attach pins the earlier segments until exit.
                    for segment in attached:
                        segment.close()
                    raise
                segments = attached
                trace = _as_view(segments[0], *payload["trace"][1:])
                stored = _as_view(segments[1], *payload["stored"][1:])
                decisions = _as_view(segments[2], *payload["decisions"][1:])
                backend = COLLECTION_BACKENDS.get(payload["backend"])
                transmission = payload["transmission"]
                backend_kwargs = {"total_nodes": payload["total_nodes"]}
                conn.send(("ok", None))
            elif verb == "collect":
                if trace is None:
                    raise SimulationError("collect before attach")
                done = 0
                for lo, hi in payload:
                    kwargs = shard_aware_kwargs(
                        backend, lo, backend_kwargs["total_nodes"]
                    )
                    result = backend(trace[:, lo:hi], transmission, **kwargs)
                    stored[:, lo:hi] = result.stored
                    decisions[:, lo:hi] = result.decisions
                    done += 1
                conn.send(("ok", done))
            elif verb == "detach":
                for segment in segments:
                    segment.close()
                segments = []
                trace = stored = decisions = None
                conn.send(("ok", None))
            elif verb == "stop":
                for segment in segments:
                    segment.close()
                conn.send(("ok", None))
                break
            else:
                raise SimulationError(f"unknown pool command {verb!r}")
        except Exception as exc:  # reply, don't die: the pool outlives it
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class ShardPool:
    """Persistent collection workers sharing trace/result memory.

    A pool spawns its workers once and reuses them across any number of
    :meth:`collect` calls; per call, the trace is published to shared
    memory once and each worker services its queue of node-range
    requests zero-copy.  Use as a context manager, or call
    :meth:`close` explicitly::

        with ShardPool(workers=4) as pool:
            stored, decisions = pool.collect(
                "adaptive", data, config.transmission, shards=16
            )

    Args:
        workers: Number of persistent worker processes, >= 1.
        guard: Pad every segment with generation-counter canaries and
            verify them after each collect (the ``repro lint
            --sanitize`` instrumentation).  Off by default: the canary
            check costs one extra pass over 128 bytes per segment, but
            guarded layouts shift every view by ``_GUARD_NBYTES`` and
            production runs keep the exact PR 8 layout.
    """

    def __init__(self, workers: int, *, guard: bool = False) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.guard = bool(guard)
        self._generation = 0
        method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        context = mp.get_context(method)
        if method == "fork":
            # Start the resource tracker *before* forking so workers
            # inherit it: their attach-side registrations then land in
            # the parent's tracker (idempotent set adds) instead of
            # spawning one private tracker per worker that warns about
            # "leaked" segments it never owned.
            try:  # pragma: no cover - private but stable since 3.8
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:
                pass
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for _ in range(self.workers):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    # Spawned workers run their own resource tracker and
                    # must drop attach-side registrations (see _attach).
                    args=(child_conn, method == "spawn"),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            # Partial spawn: stop the workers that did start, or their
            # processes and pipe fds outlive the failed constructor.
            self.close()
            raise

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker and release the pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop", None))
                conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- command plumbing ----------------------------------------------

    def _broadcast(
        self, verb: str, payload: Any, *, strict: bool = True
    ) -> None:
        errors = []
        for conn in self._conns:
            try:
                conn.send((verb, payload))
            except (OSError, BrokenPipeError) as exc:
                errors.append(repr(exc))
        for conn in self._conns:
            try:
                status, result = conn.recv()
            except (EOFError, OSError) as exc:
                status, result = "error", repr(exc)
            if status != "ok":
                errors.append(str(result))
        if errors and strict:
            raise SimulationError(
                f"shard worker failed {verb}: {errors[0]}"
            )

    # -- the one real operation ----------------------------------------

    def collect(
        self,
        backend_name: str,
        data: np.ndarray,
        transmission: TransmissionConfig,
        ranges: Sequence[Tuple[int, int]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the collection backend over node ranges, in the pool.

        Args:
            backend_name: Registered collection backend name.
            data: Validated trace, shape ``(T, N, d)`` (any float
                dtype; workers compute in the trace's dtype).
            transmission: Transmission config for the backend.
            ranges: Contiguous node ranges ``[lo, hi)`` covering the
                fleet (from :func:`~repro.simulation.fleet.
                shard_slices`); range ``k`` goes to worker
                ``k % workers``, so each worker services its queue of
                requests over the same attached segments.

        Returns:
            ``(stored, decisions)`` for the whole fleet — bit-identical
            to the in-process sharded run.
        """
        if self._closed:
            raise SimulationError("ShardPool is closed")
        # Fail fast in the parent (with suggestions) before any worker
        # sees the name.
        COLLECTION_BACKENDS.get(backend_name)
        data = np.ascontiguousarray(data)
        if data.ndim != 3:
            raise SimulationError(
                f"pool trace must be (T, N, d), got {data.shape}"
            )
        num_steps, num_nodes, dim = data.shape
        decisions_dtype = np.dtype(bool)
        # Guarded layout: [canary | payload | canary]; views shift by
        # the head-canary offset and everything else is unchanged.
        pad = _GUARD_NBYTES if self.guard else 0
        self._generation += 1
        generation = self._generation
        payload_nbytes = (
            data.nbytes,
            data.nbytes,
            num_steps * num_nodes * decisions_dtype.itemsize,
        )
        segments = []
        try:
            # repro: noqa KER-003(three fixed segments, not a node loop)
            for nbytes in payload_nbytes:
                segments.append(
                    shared_memory.SharedMemory(
                        create=True, size=max(1, nbytes) + 2 * pad
                    )
                )
            trace_seg, stored_seg, decisions_seg = segments
            if self.guard:
                for segment, nbytes in zip(segments, payload_nbytes):
                    head, tail = _guard_views(segment, max(1, nbytes))
                    head[:] = _canary(generation)
                    tail[:] = _canary(generation)
            # repro: shm-owner(parent publishes the trace before any worker attaches)
            _as_view(trace_seg, data.shape, data.dtype.name, pad)[:] = data
            try:
                self._broadcast(
                    "attach",
                    {
                        "trace": (
                            trace_seg.name, data.shape, data.dtype.name, pad,
                        ),
                        "stored": (
                            stored_seg.name, data.shape, data.dtype.name, pad,
                        ),
                        "decisions": (
                            decisions_seg.name,
                            (num_steps, num_nodes),
                            decisions_dtype.name,
                            pad,
                        ),
                        "backend": backend_name,
                        "transmission": transmission,
                        "total_nodes": num_nodes,
                    },
                )
            except SimulationError:
                # A partially failed attach broadcast leaves the
                # successful workers mapped to segments this finally
                # block is about to unlink; detach them first.
                self._broadcast("detach", None, strict=False)
                raise
            try:
                queues: List[List[Tuple[int, int]]] = [
                    [] for _ in range(self.workers)
                ]
                for k, (lo, hi) in enumerate(ranges):
                    queues[k % self.workers].append((int(lo), int(hi)))
                active = [
                    (conn, queue)
                    for conn, queue in zip(self._conns, queues)
                    if queue
                ]
                for conn, queue in active:
                    conn.send(("collect", queue))
                errors = []
                for conn, _ in active:
                    try:
                        status, result = conn.recv()
                    except (EOFError, OSError) as exc:
                        status, result = "error", repr(exc)
                    if status != "ok":
                        errors.append(str(result))
                if errors:
                    raise SimulationError(
                        f"shard worker failed collect: {errors[0]}"
                    )
                stored = np.array(
                    _as_view(stored_seg, data.shape, data.dtype.name, pad)
                )
                decisions = np.array(
                    _as_view(
                        decisions_seg,
                        (num_steps, num_nodes),
                        decisions_dtype.name,
                        pad,
                    )
                )
            finally:
                # Never mask a collect error with a detach failure.
                self._broadcast("detach", None, strict=False)
            if self.guard:
                self._verify_guards(
                    segments, payload_nbytes, generation
                )
            return stored, decisions
        finally:
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def _verify_guards(
        self,
        segments: Sequence[shared_memory.SharedMemory],
        payload_nbytes: Sequence[int],
        generation: int,
    ) -> None:
        """Raise if any canary block was torn during this collect."""
        expected = _canary(generation)
        torn = []
        for label, segment, nbytes in zip(
            ("trace", "stored", "decisions"), segments, payload_nbytes
        ):
            head, tail = _guard_views(segment, max(1, nbytes))
            if not np.array_equal(head, expected):
                torn.append(f"{label}:head")
            if not np.array_equal(tail, expected):
                torn.append(f"{label}:tail")
        if torn:
            raise SimulationError(
                f"shard pool guard canary torn after collect generation "
                f"{generation}: {', '.join(torn)} — a worker wrote "
                "outside its segment payload"
            )


__all__ = ["ShardPool", "shard_aware_kwargs", "shm_range_owner"]
