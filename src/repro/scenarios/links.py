"""Link models: what happens to a message between node and controller.

A link model sits between the transmission *decision* and the
channel's delivery accounting.  The session asks it, once per slot,
which of the slot's outgoing messages arrive immediately
(:meth:`LinkModel.transfer`); everything else is either lost — the
controller keeps the stale value, the paper's staleness rule — or
matures inside the link and is handed back by :meth:`LinkModel.due`
for re-ingestion through the session's late-arrival contract
(``session.ingest(values, ids, t=origin_slot)``).

:class:`NetworkLink` composes, in order:

1. a per-node **Gilbert–Elliott burst chain** (good/bad channel state,
   advanced once per slot) dropping messages from bad-state nodes with
   probability ``burst_loss``;
2. **i.i.d. loss** with probability ``loss``;
3. **shared-uplink contention**: survivors queue FIFO on uplink
   ``node % uplinks`` and each uplink drains at most
   ``uplink_capacity`` messages per slot (oldest first);
4. **propagation latency**: a drained message arrives ``latency``
   slots after it drains (same-slot only when it drains immediately
   with zero latency).

Everything random is drawn from one explicit seeded generator, so a
scenario is a pure function of its spec and checkpoint/resume can
continue the stream bit-identically (the generator state serializes
with the queues).

Conservation is a first-class invariant::

    sent == delivered_now + delivered_late
            + dropped_loss + dropped_churn + in_flight

with ``in_flight`` counting both uplink-queued and latency-delayed
messages.  The harness asserts it after every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError

#: One queued or in-flight message: (origin slot, node id, payload).
_Record = Tuple[int, int, np.ndarray]


@dataclass(frozen=True)
class LinkConfig:
    """Declarative link-model parameters (all adversities off = ideal).

    Args:
        loss: i.i.d. per-message loss probability in ``[0, 1)``.
        burst_enter: Per-slot probability a good node enters the bad
            (bursty) channel state; 0 disables the burst chain.
        burst_exit: Per-slot probability a bad node recovers.
        burst_loss: Loss probability for messages sent from the bad
            state.
        latency: Propagation delay in slots — a delivered message
            reaches the controller this many slots after it drains.
        uplinks: Number of shared uplinks (node ``i`` uses uplink
            ``i % uplinks``); 0 disables contention (dedicated links).
        uplink_capacity: Messages each uplink drains per slot (FIFO,
            oldest origin first).  Required >= 1 when ``uplinks > 0``.
        seed: Seed of the link's private random generator.
    """

    loss: float = 0.0
    burst_enter: float = 0.0
    burst_exit: float = 0.5
    burst_loss: float = 0.9
    latency: int = 0
    uplinks: int = 0
    uplink_capacity: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ConfigurationError(f"loss must be in [0, 1), got {self.loss}")
        for field in ("burst_enter", "burst_exit", "burst_loss"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{field} must be in [0, 1], got {value}"
                )
        if self.latency < 0:
            raise ConfigurationError(
                f"latency must be >= 0, got {self.latency}"
            )
        if self.uplinks < 0:
            raise ConfigurationError(
                f"uplinks must be >= 0, got {self.uplinks}"
            )
        if self.uplinks > 0 and self.uplink_capacity < 1:
            raise ConfigurationError(
                "uplink_capacity must be >= 1 when uplinks are shared, "
                f"got {self.uplink_capacity}"
            )

    @property
    def is_ideal(self) -> bool:
        """True when every adversity is off (pass-through link)."""
        return (
            self.loss == 0.0
            and self.burst_enter == 0.0
            and self.latency == 0
            and self.uplinks == 0
        )


class LinkModel:
    """Interface between the session's transmit step and the channel.

    Subclasses decide, per slot, which outgoing messages are delivered
    immediately, which mature for later late-arrival ingestion, and
    which are lost; and they follow the fleet through churn.
    """

    config: LinkConfig

    @property
    def num_nodes(self) -> int:
        raise NotImplementedError

    def transfer(
        self, slot: int, sender_ids: np.ndarray, payload: np.ndarray
    ) -> np.ndarray:
        """Submit one slot's outgoing messages; return who got through.

        Args:
            slot: The closing slot (the messages' origin slot).
            sender_ids: ``(m,)`` node ids that decided to transmit.
            payload: ``(m, d)`` transmitted values, aligned with
                ``sender_ids``.

        Returns:
            Positions into ``sender_ids`` delivered *within this
            slot*; the rest are lost or in flight.
        """
        raise NotImplementedError

    def due(self, slot: int) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """Messages maturing at ``slot``, grouped by origin slot.

        Returns:
            ``(origin_slot, node_ids, values)`` tuples, origin
            ascending — each maps to one
            ``session.ingest(values, node_ids, t=origin_slot)`` call.
        """
        raise NotImplementedError

    def grow(self, count: int) -> None:
        """Follow :meth:`StreamSession.grow`: ``count`` nodes joined."""
        raise NotImplementedError

    def compact(self, keep: np.ndarray) -> None:
        """Follow :meth:`StreamSession.compact`: renumber survivors and
        drop departed nodes' traffic as churn losses."""
        raise NotImplementedError

    def fail_nodes(self, node_ids: np.ndarray) -> None:
        """Crash-restart: drop the named nodes' queued/in-flight
        traffic as churn losses (identities persist)."""
        raise NotImplementedError

    def counters(self) -> Dict[str, int]:
        """Cumulative message accounting (see module docstring)."""
        raise NotImplementedError

    @property
    def in_flight(self) -> int:
        """Messages currently queued or latency-delayed."""
        raise NotImplementedError

    @property
    def is_conserved(self) -> bool:
        """Whether the conservation invariant currently holds."""
        totals = self.counters()
        return totals["sent"] == (
            totals["delivered_now"]
            + totals["delivered_late"]
            + totals["dropped_loss"]
            + totals["dropped_churn"]
            + self.in_flight
        )

    def get_state(self) -> dict:
        raise NotImplementedError

    def set_state(self, state: dict) -> None:
        raise NotImplementedError


class IdealLink(LinkModel):
    """Pass-through link: every message arrives in its own slot.

    Draws no randomness and keeps no queues, so a session running over
    an ideal link is **bit-identical** to one with no link at all (the
    property tests pin this).  Only the counters advance.
    """

    def __init__(self, num_nodes: int, config: Optional[LinkConfig] = None):
        self.config = config if config is not None else LinkConfig()
        if not self.config.is_ideal:
            raise ConfigurationError(
                "IdealLink requires an all-off LinkConfig; use "
                "NetworkLink (or build_link) for adverse configurations"
            )
        if num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {num_nodes}"
            )
        self._num_nodes = int(num_nodes)
        self._sent = 0

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def transfer(
        self, slot: int, sender_ids: np.ndarray, payload: np.ndarray
    ) -> np.ndarray:
        count = int(np.asarray(sender_ids).shape[0])
        self._sent += count
        return np.arange(count, dtype=np.int64)

    def due(self, slot: int) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        return []

    def grow(self, count: int) -> None:
        self._num_nodes += int(count)

    def compact(self, keep: np.ndarray) -> None:
        self._num_nodes = int(np.asarray(keep).size)

    def fail_nodes(self, node_ids: np.ndarray) -> None:
        pass

    def counters(self) -> Dict[str, int]:
        return {
            "sent": self._sent,
            "delivered_now": self._sent,
            "delivered_late": 0,
            "dropped_loss": 0,
            "dropped_churn": 0,
        }

    @property
    def in_flight(self) -> int:
        return 0

    def get_state(self) -> dict:
        return {"kind": "ideal", "num_nodes": self._num_nodes,
                "sent": self._sent}

    def set_state(self, state: dict) -> None:
        if state.get("kind") != "ideal":
            raise SimulationError(
                f"state is for a {state.get('kind')!r} link, not ideal"
            )
        self._num_nodes = int(state["num_nodes"])
        self._sent = int(state["sent"])


class NetworkLink(LinkModel):
    """Burst/i.i.d. loss, shared-uplink contention and latency.

    Args:
        num_nodes: Initial fleet size.
        config: The link parameters.
    """

    def __init__(self, num_nodes: int, config: LinkConfig) -> None:
        if num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {num_nodes}"
            )
        self.config = config
        self._num_nodes = int(num_nodes)
        # repro: noqa KER-001(seeded generator; the link is a pure function of config)
        self._rng = np.random.default_rng(config.seed)
        self._bad = np.zeros(self._num_nodes, dtype=bool)
        # Per-uplink FIFO backlogs of messages awaiting drain capacity.
        self._queues: List[List[_Record]] = [
            [] for _ in range(max(config.uplinks, 0))
        ]
        # Latency-delayed messages keyed by arrival slot.
        self._pending: Dict[int, List[_Record]] = {}
        self._sent = 0
        self._delivered_now = 0
        self._delivered_late = 0
        self._dropped_loss = 0
        self._dropped_churn = 0

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    # ------------------------------------------------------------------
    # Per-slot message flow
    # ------------------------------------------------------------------

    def transfer(
        self, slot: int, sender_ids: np.ndarray, payload: np.ndarray
    ) -> np.ndarray:
        cfg = self.config
        sender_ids = np.asarray(sender_ids, dtype=np.int64).ravel()
        payload = np.atleast_2d(np.asarray(payload, dtype=float))
        count = int(sender_ids.shape[0])
        self._sent += count
        if cfg.burst_enter > 0.0:
            # One draw per node per slot: bad nodes recover with
            # p=burst_exit, good nodes degrade with p=burst_enter.
            u = self._rng.random(self._num_nodes)
            self._bad = np.where(
                self._bad, u >= cfg.burst_exit, u < cfg.burst_enter
            )
        keep = np.ones(count, dtype=bool)
        if count and cfg.loss > 0.0:
            keep &= self._rng.random(count) >= cfg.loss
        if count and cfg.burst_enter > 0.0:
            bursty = self._bad[sender_ids]
            if bursty.any():
                keep &= ~(bursty & (self._rng.random(count) < cfg.burst_loss))
        self._dropped_loss += int(count - keep.sum())

        if cfg.uplinks > 0:
            for pos in np.flatnonzero(keep).tolist():
                node = int(sender_ids[pos])
                self._queues[node % cfg.uplinks].append(
                    (int(slot), node, payload[pos].copy())
                )
            immediate = set()
            for origin, node, value in self._drain():
                if origin == slot and cfg.latency == 0:
                    immediate.add(node)
                else:
                    self._schedule(slot, origin, node, value)
            self._delivered_now += len(immediate)
            if immediate:
                order = [
                    p for p in range(count)
                    if int(sender_ids[p]) in immediate
                ]
                return np.asarray(order, dtype=np.int64)
            return np.empty(0, dtype=np.int64)
        if cfg.latency == 0:
            positions = np.flatnonzero(keep)
            self._delivered_now += int(positions.size)
            return positions.astype(np.int64)
        for pos in np.flatnonzero(keep).tolist():
            self._schedule(
                slot, int(slot), int(sender_ids[pos]), payload[pos].copy()
            )
        return np.empty(0, dtype=np.int64)

    def _drain(self) -> List[_Record]:
        """Pop up to ``uplink_capacity`` records per uplink, FIFO."""
        capacity = self.config.uplink_capacity
        drained: List[_Record] = []
        for queue in self._queues:
            take = min(capacity, len(queue))
            drained.extend(queue[:take])
            del queue[:take]
        return drained

    def _schedule(
        self, now: int, origin: int, node: int, value: np.ndarray
    ) -> None:
        """Park a drained message until its propagation delay elapses.

        Arrival is at least ``now + 1``: slot ``now``'s late arrivals
        were already re-ingested before this slot's transfer ran.
        """
        arrival = max(now + self.config.latency, now + 1)
        self._pending.setdefault(arrival, []).append((origin, node, value))

    def due(self, slot: int) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        matured = self._pending.pop(int(slot), [])
        if not matured:
            return []
        self._delivered_late += len(matured)
        by_origin: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        for origin, node, value in matured:
            by_origin.setdefault(origin, []).append((node, value))
        out = []
        for origin in sorted(by_origin):
            group = by_origin[origin]
            ids = np.asarray([node for node, _ in group], dtype=np.int64)
            values = np.stack([value for _, value in group])
            out.append((origin, ids, values))
        return out

    # ------------------------------------------------------------------
    # Fleet churn
    # ------------------------------------------------------------------

    def grow(self, count: int) -> None:
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        self._num_nodes += int(count)
        self._bad = np.concatenate(
            [self._bad, np.zeros(int(count), dtype=bool)]
        )

    def compact(self, keep: np.ndarray) -> None:
        keep = np.asarray(keep, dtype=np.int64).ravel()
        remap = np.full(self._num_nodes, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size, dtype=np.int64)
        self._bad = self._bad[keep]
        self._num_nodes = int(keep.size)
        survivors: List[_Record] = []
        for queue in self._queues:
            for origin, node, value in queue:
                if remap[node] >= 0:
                    survivors.append((origin, int(remap[node]), value))
                else:
                    self._dropped_churn += 1
            queue.clear()
        # Re-bucket: uplink assignment follows the *new* node ids.
        # Deterministic order: origin slot, then new node id.
        survivors.sort(key=lambda record: (record[0], record[1]))
        for record in survivors:
            self._queues[record[1] % self.config.uplinks].append(record)
        for arrival in sorted(self._pending):
            kept = []
            for origin, node, value in self._pending[arrival]:
                if remap[node] >= 0:
                    kept.append((origin, int(remap[node]), value))
                else:
                    self._dropped_churn += 1
            if kept:
                self._pending[arrival] = kept
            else:
                del self._pending[arrival]

    def fail_nodes(self, node_ids: np.ndarray) -> None:
        failed = set(np.asarray(node_ids, dtype=np.int64).ravel().tolist())
        for queue in self._queues:
            kept = [r for r in queue if r[1] not in failed]
            self._dropped_churn += len(queue) - len(kept)
            queue[:] = kept
        for arrival in sorted(self._pending):
            kept = [r for r in self._pending[arrival] if r[1] not in failed]
            self._dropped_churn += len(self._pending[arrival]) - len(kept)
            if kept:
                self._pending[arrival] = kept
            else:
                del self._pending[arrival]
        # A restarted node comes back with a clean channel.
        self._bad[np.asarray(sorted(failed), dtype=np.int64)] = False

    # ------------------------------------------------------------------
    # Accounting and state
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "sent": self._sent,
            "delivered_now": self._delivered_now,
            "delivered_late": self._delivered_late,
            "dropped_loss": self._dropped_loss,
            "dropped_churn": self._dropped_churn,
        }

    @property
    def in_flight(self) -> int:
        queued = sum(len(queue) for queue in self._queues)
        delayed = sum(len(batch) for batch in self._pending.values())
        return queued + delayed

    def get_state(self) -> dict:
        def pack(records: List[_Record]) -> Optional[dict]:
            if not records:
                return None
            return {
                "origin": np.asarray([r[0] for r in records], dtype=np.int64),
                "node": np.asarray([r[1] for r in records], dtype=np.int64),
                "values": np.stack([r[2] for r in records]),
            }

        return {
            "kind": "network",
            "num_nodes": self._num_nodes,
            "bad": self._bad.copy(),
            "queues": [pack(queue) for queue in self._queues],
            "pending_slots": sorted(self._pending),
            "pending": [
                pack(self._pending[arrival])
                for arrival in sorted(self._pending)
            ],
            "counters": self.counters(),
            "rng": self._rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        if state.get("kind") != "network":
            raise SimulationError(
                f"state is for a {state.get('kind')!r} link, not network"
            )

        def unpack(packed: Optional[dict]) -> List[_Record]:
            if packed is None:
                return []
            origins = np.asarray(packed["origin"], dtype=np.int64)
            node_column = np.asarray(packed["node"], dtype=np.int64)
            values = np.asarray(packed["values"], dtype=float)
            return [
                (int(origins[k]), int(node_column[k]), values[k].copy())
                for k in range(origins.shape[0])
            ]

        self._num_nodes = int(state["num_nodes"])
        self._bad = np.asarray(state["bad"], dtype=bool).copy()
        queues = state["queues"]
        if len(queues) != len(self._queues):
            raise SimulationError(
                f"state has {len(queues)} uplink queues, link has "
                f"{len(self._queues)} (config mismatch)"
            )
        self._queues = [unpack(packed) for packed in queues]
        self._pending = {
            int(arrival): unpack(packed)
            for arrival, packed in zip(state["pending_slots"], state["pending"])
        }
        totals = state["counters"]
        self._sent = int(totals["sent"])
        self._delivered_now = int(totals["delivered_now"])
        self._delivered_late = int(totals["delivered_late"])
        self._dropped_loss = int(totals["dropped_loss"])
        self._dropped_churn = int(totals["dropped_churn"])
        # repro: noqa KER-001(resuming the serialized generator mid-stream)
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng"]
        self._rng = rng


def build_link(config: LinkConfig, num_nodes: int) -> LinkModel:
    """The right link for a config: pass-through when all-off."""
    if config.is_ideal:
        return IdealLink(num_nodes, config)
    return NetworkLink(num_nodes, config)


__all__ = [
    "IdealLink",
    "LinkConfig",
    "LinkModel",
    "NetworkLink",
    "build_link",
]
