"""The trace-replay harness: drive a scenario through a live session.

:func:`run_scenario` replays a real-trace tensor through a
:class:`~repro.session.StreamSession` under a scenario's link model
and churn schedule, one slot at a time:

1. apply this slot's churn events (grow / compact / crash-restart);
2. re-ingest the link's matured deliveries as late arrivals
   (``session.ingest(values, ids, t=origin_slot)`` — the documented
   reorder-window contract; nothing ever writes fleet columns
   directly);
3. score forecasts that matured this slot, by trace-column identity;
4. ingest the slot's fresh measurements for the current members;
5. record the per-slot delivery / loss / latency / churn counters.

At the end the harness *asserts* message conservation —
``sent == delivered_now + delivered_late + dropped_loss +
dropped_churn + in_flight`` — and returns a
:class:`~repro.scenarios.report.ScenarioReport`.

Checkpoint/resume: pass ``checkpoint_path`` (and optionally
``checkpoint_every``) to persist snapshots; pass the saved checkpoint
as ``resume_from`` to continue.  The membership track replays the
pre-checkpoint churn events (same seed, same draws), the link's queues
and generator travel inside the checkpoint, and the continuation is
bit-identical to a run that never stopped — including mid-churn
(property tests pin this).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api import Engine
from repro.checkpoint import Checkpoint, as_checkpoint
from repro.core.metrics import instantaneous_rmse
from repro.exceptions import ConfigurationError, SimulationError
from repro.registry import SCENARIOS
from repro.scenarios.churn import MembershipTrack
from repro.scenarios.links import build_link
from repro.scenarios.report import ScenarioReport
from repro.scenarios.spec import TRACE_SOURCES, ScenarioSpec

#: Link counters reported per slot as deltas.
_DELTA_KEYS = (
    "delivered_now", "delivered_late", "dropped_loss", "dropped_churn"
)


def resolve_scenario(spec: Union[str, ScenarioSpec]) -> ScenarioSpec:
    """A validated :class:`ScenarioSpec` from a name or an instance."""
    if isinstance(spec, str):
        spec = SCENARIOS.create(spec)
    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError(
            f"expected a ScenarioSpec or registered scenario name, got "
            f"{type(spec).__name__}"
        )
    spec.validate()
    return spec


def run_scenario(
    spec: Union[str, ScenarioSpec],
    *,
    until: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: Optional[int] = None,
    resume_from: Optional[Union[Checkpoint, str, Path]] = None,
) -> ScenarioReport:
    """Replay one scenario end to end (or a slot range of it).

    Args:
        spec: A :class:`ScenarioSpec` or a name registered in
            :data:`repro.registry.SCENARIOS`.
        until: Stop after closing slot ``until - 1`` instead of running
            the full ``spec.num_steps`` (useful with
            ``checkpoint_path`` to stage a later resume).
        checkpoint_path: Where to save session snapshots; always saved
            once at the end of the run.
        checkpoint_every: Additionally snapshot every this many slots
            (overwriting ``checkpoint_path`` — it always holds the
            latest snapshot).
        resume_from: A checkpoint previously written by this harness
            for the *same spec*; the replay continues from its slot.

    Returns:
        The replay's :class:`~repro.scenarios.report.ScenarioReport`
        (covering only the slots this call executed).

    Raises:
        SimulationError: When link message accounting fails to conserve
            — every sent message must be delivered, dropped, or still
            in flight.
    """
    spec = resolve_scenario(spec)
    dataset = TRACE_SOURCES[spec.source](
        num_nodes=spec.total_nodes, num_steps=spec.num_steps
    )
    trace = dataset.resource(spec.resource)
    track = MembershipTrack(
        spec.total_nodes, spec.initial_nodes, seed=spec.seed
    )
    engine = Engine(spec.pipeline_config, policy=spec.policy)

    if resume_from is not None:
        checkpoint = as_checkpoint(resume_from)
        start = int(checkpoint.session["time"])
        if spec.churn is not None:
            # Same seed, same events, same draws: the track lands on
            # exactly the membership the checkpointed run had.
            track.replay(spec.churn.before(start))
        link = build_link(spec.link, int(checkpoint.session["num_nodes"]))
        session = engine.resume(checkpoint, link=link)
        if track.num_members != session.num_nodes:
            raise SimulationError(
                f"membership replay yields {track.num_members} nodes, "
                f"checkpoint holds {session.num_nodes}; resume_from must "
                "come from the same scenario spec"
            )
    else:
        start = 0
        link = build_link(spec.link, spec.initial_nodes)
        session = engine.session(
            spec.initial_nodes,
            1,
            reorder_window=spec.effective_reorder_window,
            vectorized=spec.vectorized,
            link=link,
        )
    end = spec.num_steps if until is None else min(int(until), spec.num_steps)

    series: Dict[str, List] = {
        key: []
        for key in (
            "fleet_size", "messages", "rmse", "in_flight",
            "late_applied", "late_dropped", *_DELTA_KEYS,
        )
    }
    events_applied: List[Tuple[int, str, int]] = []
    # Forecasts awaiting their target slot: maturity slot -> list of
    # (horizon, predicted values, the trace columns the predictions
    # were made for).  Churn may renumber session nodes meanwhile;
    # scoring by column identity keeps the comparison honest.
    pending_scores: Dict[int, List[Tuple[int, np.ndarray, np.ndarray]]] = {}
    horizon_errors: Dict[int, List[float]] = {}
    previous = link.counters()

    for t in range(start, end):
        if spec.churn is not None:
            for event in spec.churn.at(t):
                if event.kind == "join":
                    fresh = track.join(event.count)
                    if fresh.size:
                        session.grow(int(fresh.size))
                        events_applied.append((t, "join", int(fresh.size)))
                elif event.kind == "leave":
                    keep, removed = track.leave(event.count)
                    if removed.size:
                        session.compact(keep)
                        events_applied.append((t, "leave", int(removed.size)))
                else:
                    victims = track.crash(event.count)
                    if victims.size:
                        session.restart_nodes(victims)
                        events_applied.append((t, "crash", int(victims.size)))
        for origin, ids, values in link.due(t):
            session.ingest(values, ids, t=origin)
        for h, predicted, columns in pending_scores.pop(t, []):
            horizon_errors.setdefault(h, []).append(
                float(instantaneous_rmse(predicted, trace[t, columns]))
            )
        output = session.ingest(trace[t, track.members][:, np.newaxis])
        if output.node_forecasts:
            members = track.members.copy()
            for h, forecast in output.node_forecasts.items():
                pending_scores.setdefault(t + int(h), []).append(
                    (int(h), np.asarray(forecast)[:, 0].copy(), members)
                )
        totals = link.counters()
        series["fleet_size"].append(int(session.num_nodes))
        series["messages"].append(int(output.transport.messages))
        series["rmse"].append(
            float(
                instantaneous_rmse(
                    session.fleet.stored[:, 0], trace[t, track.members]
                )
            )
        )
        series["in_flight"].append(int(link.in_flight))
        series["late_applied"].append(int(session.late_applied))
        series["late_dropped"].append(int(session.late_dropped))
        for key in _DELTA_KEYS:
            series[key].append(int(totals[key] - previous[key]))
        previous = totals
        if (
            checkpoint_path is not None
            and checkpoint_every
            and (t + 1 - start) % int(checkpoint_every) == 0
        ):
            session.save(checkpoint_path)

    if checkpoint_path is not None:
        session.save(checkpoint_path)

    totals = link.counters()
    if not link.is_conserved:
        raise SimulationError(
            "link message accounting leaked: "
            f"sent={totals['sent']} != now={totals['delivered_now']} + "
            f"late={totals['delivered_late']} + "
            f"lost={totals['dropped_loss']} + "
            f"churned={totals['dropped_churn']} + "
            f"in_flight={link.in_flight}"
        )
    return ScenarioReport(
        name=spec.name,
        slots=end - start,
        final_nodes=int(session.num_nodes),
        per_slot={key: np.asarray(vals) for key, vals in series.items()},
        link_totals=totals,
        in_flight=int(link.in_flight),
        conserved=True,
        late_applied=int(session.late_applied),
        late_dropped=int(session.late_dropped),
        transport_messages=int(session.transport_stats.messages),
        transport_floats=int(session.transport_stats.payload_floats),
        empirical_frequency=float(session.empirical_frequency),
        rmse_by_horizon={
            h: float(np.mean(errors))
            for h, errors in sorted(horizon_errors.items())
        },
        events=events_applied,
    )


__all__ = ["resolve_scenario", "run_scenario"]
