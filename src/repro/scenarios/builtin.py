"""Built-in scenarios, self-registered into the SCENARIOS registry.

Each builder returns a fresh :class:`~repro.scenarios.spec.ScenarioSpec`
— link model × churn schedule × trace source — runnable via
``repro run --scenario NAME`` or
:func:`repro.scenarios.harness.run_scenario`.  ``lossy_churn`` is the
kitchen-sink acceptance scenario: i.i.d. plus burst loss, shared-uplink
contention, propagation latency, and all three churn kinds at once.
"""

from __future__ import annotations

from repro.registry import register_scenario
from repro.scenarios.churn import ChurnEvent, ChurnSchedule
from repro.scenarios.links import LinkConfig
from repro.scenarios.spec import ScenarioSpec


@register_scenario("ideal")
def _ideal() -> ScenarioSpec:
    """Pass-through link, static fleet: the bit-identity baseline."""
    return ScenarioSpec(
        name="ideal",
        source="alibaba",
        num_steps=200,
        total_nodes=24,
        initial_nodes=24,
    )


@register_scenario("lossy")
def _lossy() -> ScenarioSpec:
    """5% i.i.d. loss plus one slot of propagation latency."""
    return ScenarioSpec(
        name="lossy",
        source="alibaba",
        num_steps=200,
        total_nodes=24,
        initial_nodes=24,
        link=LinkConfig(loss=0.05, latency=1, seed=101),
    )


@register_scenario("bursty")
def _bursty() -> ScenarioSpec:
    """Gilbert–Elliott burst-loss episodes over the Google-like trace."""
    return ScenarioSpec(
        name="bursty",
        source="google",
        num_steps=200,
        total_nodes=24,
        initial_nodes=24,
        link=LinkConfig(
            burst_enter=0.05, burst_exit=0.3, burst_loss=0.9,
            latency=1, seed=102,
        ),
    )


@register_scenario("contended")
def _contended() -> ScenarioSpec:
    """Two shared uplinks with tight FIFO drain capacity."""
    return ScenarioSpec(
        name="contended",
        source="bitbrains",
        num_steps=200,
        total_nodes=24,
        initial_nodes=24,
        link=LinkConfig(uplinks=2, uplink_capacity=4, seed=103),
    )


@register_scenario("churny")
def _churny() -> ScenarioSpec:
    """Ideal link but a restless fleet: joins, leaves, crash-restarts."""
    return ScenarioSpec(
        name="churny",
        source="sensor",
        resource="temperature",
        num_steps=200,
        total_nodes=32,
        initial_nodes=22,
        seed=7,
        churn=ChurnSchedule([
            ChurnEvent(slot=60, kind="join", count=4),
            ChurnEvent(slot=90, kind="crash", count=3),
            ChurnEvent(slot=120, kind="leave", count=5),
            ChurnEvent(slot=150, kind="join", count=3),
            ChurnEvent(slot=175, kind="crash", count=2),
        ]),
    )


@register_scenario("lossy_churn")
def _lossy_churn() -> ScenarioSpec:
    """Everything at once — the acceptance scenario.

    i.i.d. and burst loss, two contended uplinks, one slot of latency,
    and a churn schedule mixing all three event kinds, over the
    Alibaba-like trace.
    """
    return ScenarioSpec(
        name="lossy_churn",
        source="alibaba",
        num_steps=220,
        total_nodes=32,
        initial_nodes=24,
        seed=11,
        link=LinkConfig(
            loss=0.03,
            burst_enter=0.04, burst_exit=0.35, burst_loss=0.8,
            latency=1,
            uplinks=2, uplink_capacity=6,
            seed=104,
        ),
        churn=ChurnSchedule([
            ChurnEvent(slot=70, kind="join", count=4),
            ChurnEvent(slot=100, kind="crash", count=3),
            ChurnEvent(slot=130, kind="leave", count=4),
            ChurnEvent(slot=160, kind="join", count=2),
            ChurnEvent(slot=190, kind="leave", count=2),
        ]),
    )


__all__: list = []
