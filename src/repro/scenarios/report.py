"""Scenario run results: delivery, churn and accuracy accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class ScenarioReport:
    """Everything a finished scenario replay observed.

    Attributes:
        name: The scenario's name.
        slots: Slots this report covers (a resumed run reports only
            the slots it replayed itself).
        final_nodes: Fleet size after the last slot.
        per_slot: Per-slot series, each an array of length ``slots``:
            ``fleet_size``, ``messages`` (delivered this slot),
            ``rmse`` (collection error of the stored matrix vs the
            live members' truth), and the link counter *deltas*
            (``delivered_now``, ``delivered_late``, ``dropped_loss``,
            ``dropped_churn``, ``in_flight``) plus the session's
            cumulative ``late_applied`` / ``late_dropped``.
        link_totals: Final cumulative link counters.
        in_flight: Messages still inside the link at the end.
        conserved: Whether ``sent == delivered_now + delivered_late +
            dropped_loss + dropped_churn + in_flight`` held at the end.
        late_applied: Session-cumulative applied late arrivals.
        late_dropped: Session-cumulative dropped late arrivals.
        transport_messages: Cumulative messages the channel counted.
        transport_floats: Cumulative payload floats.
        empirical_frequency: Fleet-average transmission frequency.
        rmse_by_horizon: Mean forecast RMSE per horizon, scored by
            trace-column identity (a forecast made for node ``i`` is
            compared against the trace column node ``i`` was bound to
            when the forecast was made, even if churn later renumbered
            or removed it).
        events: Applied churn events as ``(slot, kind, count)`` with
            the *effective* count (after clamping).
    """

    name: str
    slots: int
    final_nodes: int
    per_slot: Dict[str, np.ndarray] = field(default_factory=dict)
    link_totals: Dict[str, int] = field(default_factory=dict)
    in_flight: int = 0
    conserved: bool = True
    late_applied: int = 0
    late_dropped: int = 0
    transport_messages: int = 0
    transport_floats: int = 0
    empirical_frequency: float = 0.0
    rmse_by_horizon: Dict[int, float] = field(default_factory=dict)
    events: List[Tuple[int, str, int]] = field(default_factory=list)

    def summary(self) -> str:
        """A compact human-readable digest (CLI output)."""
        totals = self.link_totals
        lines = [
            f"scenario {self.name}: {self.slots} slots, "
            f"{self.final_nodes} nodes at end",
            (
                "link: sent={sent} now={delivered_now} "
                "late={delivered_late} lost={dropped_loss} "
                "churned={dropped_churn}".format(**totals)
                + f" in_flight={self.in_flight}"
                + (" [conserved]" if self.conserved else " [LEAK]")
            ),
            (
                f"session: late_applied={self.late_applied} "
                f"late_dropped={self.late_dropped} "
                f"messages={self.transport_messages} "
                f"frequency={self.empirical_frequency:.3f}"
            ),
        ]
        rmse = self.per_slot.get("rmse")
        if rmse is not None and rmse.size:
            lines.append(f"collection rmse (mean): {float(rmse.mean()):.4f}")
        for h in sorted(self.rmse_by_horizon):
            lines.append(
                f"forecast rmse h={h}: {self.rmse_by_horizon[h]:.4f}"
            )
        if self.events:
            digest = ", ".join(
                f"t={slot} {kind}x{count}"
                for slot, kind, count in self.events
            )
            lines.append(f"churn: {digest}")
        return "\n".join(lines)


__all__ = ["ScenarioReport"]
