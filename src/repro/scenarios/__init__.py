"""Scenario engine: network link models, fleet churn, trace replay.

The paper evaluates collection and forecasting over an idealized
network; this subsystem replays the real-trace loaders through a
:class:`~repro.session.StreamSession` under *adverse* conditions —
per-node loss and latency, burst (Gilbert–Elliott) loss episodes,
shared-uplink contention with FIFO drain, and fleet churn (joins,
departures, crash-restarts) — without touching the collection or
forecasting mathematics: every delayed delivery flows through the
session's documented late-arrival contract, and every loss simply
leaves the previous stored value in place (the paper's staleness rule).

Composable pieces:

* :mod:`~repro.scenarios.links` — link models interposed between
  transmission decisions and the channel;
* :mod:`~repro.scenarios.churn` — churn schedules and the replayable
  session-node ↔ trace-column membership track;
* :mod:`~repro.scenarios.spec` — :class:`ScenarioSpec`, the value
  object combining link model × churn schedule × trace source;
* :mod:`~repro.scenarios.harness` — :func:`run_scenario`, the replay
  loop producing a :class:`~repro.scenarios.report.ScenarioReport`;
* :mod:`~repro.scenarios.builtin` — named specs self-registered into
  :data:`repro.registry.SCENARIOS` (``repro run --scenario NAME``).
"""

from repro.scenarios.churn import ChurnEvent, ChurnSchedule, MembershipTrack
from repro.scenarios.harness import run_scenario
from repro.scenarios.links import (
    IdealLink,
    LinkConfig,
    LinkModel,
    NetworkLink,
    build_link,
)
from repro.scenarios.report import ScenarioReport
from repro.scenarios.spec import TRACE_SOURCES, ScenarioSpec

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "IdealLink",
    "LinkConfig",
    "LinkModel",
    "MembershipTrack",
    "NetworkLink",
    "ScenarioReport",
    "ScenarioSpec",
    "TRACE_SOURCES",
    "build_link",
    "run_scenario",
]
