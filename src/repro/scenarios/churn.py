"""Fleet churn schedules and the trace-column membership track.

A scenario replays a fixed real-trace tensor ``(T, total_nodes)``
through a fleet whose membership changes over time.  Two pieces keep
that honest:

* :class:`ChurnSchedule` — the declarative *when*: join/leave/crash
  events pinned to slots;
* :class:`MembershipTrack` — the replayable *who*: the mapping from
  live session node indices to trace columns.  Joins consume fresh,
  never-used trace columns; leaves and crashes pick victims from one
  seeded generator.  Because every decision is a pure function of
  ``(seed, event sequence)``, a resumed run replays the pre-checkpoint
  events through a fresh track and lands on exactly the membership —
  and generator state — the original run had, which is what makes
  mid-churn checkpoint/resume bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: Recognized churn event kinds.
EVENT_KINDS = ("join", "leave", "crash")


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change, applied *before* its slot is ingested.

    Args:
        slot: The slot the event precedes.
        kind: ``"join"`` (new nodes), ``"leave"`` (permanent
            departure) or ``"crash"`` (crash-restart: the node loses
            local state but keeps its identity).
        count: How many nodes the event touches (clamped by the track:
            joins by remaining fresh columns, leaves so the fleet
            keeps at least one node).
    """

    slot: int
    kind: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ConfigurationError(f"slot must be >= 0, got {self.slot}")
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"kind must be one of {EVENT_KINDS}, got {self.kind!r}"
            )
        if self.count < 1:
            raise ConfigurationError(
                f"count must be >= 1, got {self.count}"
            )


class ChurnSchedule:
    """An immutable slot-sorted sequence of :class:`ChurnEvent`."""

    def __init__(self, events: Iterable[ChurnEvent]) -> None:
        ordered = sorted(events, key=lambda event: event.slot)
        self.events: Tuple[ChurnEvent, ...] = tuple(ordered)

    def at(self, slot: int) -> Tuple[ChurnEvent, ...]:
        """Events scheduled for ``slot``, in schedule order."""
        return tuple(e for e in self.events if e.slot == int(slot))

    def before(self, slot: int) -> Tuple[ChurnEvent, ...]:
        """Events strictly before ``slot`` (the resume replay set)."""
        return tuple(e for e in self.events if e.slot < int(slot))

    @classmethod
    def periodic(
        cls,
        kind: str,
        *,
        every: int,
        start: int,
        until: int,
        count: int = 1,
    ) -> "ChurnSchedule":
        """One ``kind`` event of ``count`` nodes every ``every`` slots
        in ``[start, until)``."""
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        return cls(
            ChurnEvent(slot=slot, kind=kind, count=count)
            for slot in range(int(start), int(until), int(every))
        )

    @classmethod
    def merge(cls, *schedules: "ChurnSchedule") -> "ChurnSchedule":
        """Combine schedules (stable slot order)."""
        merged: List[ChurnEvent] = []
        for schedule in schedules:
            merged.extend(schedule.events)
        return cls(merged)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class MembershipTrack:
    """Replayable mapping of live session nodes to trace columns.

    Session node ``i`` reads trace column ``members[i]``.  Joins
    consume the lowest never-used columns (deterministic, no
    randomness); leave/crash victims come from the private seeded
    generator, so the whole membership history is a pure function of
    the seed and the event sequence.

    Args:
        total_columns: Columns available in the trace tensor.
        initial_members: Fleet size at slot 0 (columns
            ``0..initial_members-1``).
        seed: Seed of the victim-selection generator.
    """

    def __init__(
        self, total_columns: int, initial_members: int, *, seed: int = 0
    ) -> None:
        if initial_members < 1:
            raise ConfigurationError(
                f"initial_members must be >= 1, got {initial_members}"
            )
        if initial_members > total_columns:
            raise ConfigurationError(
                f"initial_members {initial_members} exceeds the trace's "
                f"{total_columns} columns"
            )
        self.total_columns = int(total_columns)
        self.members = np.arange(initial_members, dtype=np.int64)
        self._next_column = int(initial_members)
        # repro: noqa KER-001(seeded generator; churn is a pure function of spec)
        self._rng = np.random.default_rng(seed)

    @property
    def num_members(self) -> int:
        return int(self.members.size)

    @property
    def columns_remaining(self) -> int:
        """Fresh trace columns still available for joins."""
        return self.total_columns - self._next_column

    def join(self, count: int) -> np.ndarray:
        """Admit up to ``count`` nodes on fresh trace columns.

        Returns the consumed column ids (may be fewer than ``count``
        when the trace runs out of columns — possibly empty).
        """
        take = min(int(count), self.columns_remaining)
        if take <= 0:
            return np.empty(0, dtype=np.int64)
        fresh = np.arange(
            self._next_column, self._next_column + take, dtype=np.int64
        )
        self._next_column += take
        self.members = np.concatenate([self.members, fresh])
        return fresh

    def leave(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Remove up to ``count`` random members (keeping at least 1).

        Returns:
            ``(keep, removed)`` — the surviving session node indices
            (strictly increasing: the :meth:`StreamSession.compact
            <repro.session.StreamSession.compact>` argument) and the
            departed indices.  ``removed`` may be empty.
        """
        n = self.num_members
        take = min(int(count), n - 1)
        if take <= 0:
            return np.arange(n, dtype=np.int64), np.empty(0, dtype=np.int64)
        removed = np.sort(
            self._rng.choice(n, size=take, replace=False)
        ).astype(np.int64)
        keep = np.setdiff1d(
            np.arange(n, dtype=np.int64), removed, assume_unique=True
        )
        self.members = self.members[keep]
        return keep, removed

    def crash(self, count: int) -> np.ndarray:
        """Pick up to ``count`` random members to crash-restart.

        Membership is unchanged (the node keeps its identity and trace
        column); only the victim indices are returned.
        """
        n = self.num_members
        take = min(int(count), n)
        if take <= 0:
            return np.empty(0, dtype=np.int64)
        return np.sort(
            self._rng.choice(n, size=take, replace=False)
        ).astype(np.int64)

    def replay(self, events: Sequence[ChurnEvent]) -> None:
        """Re-apply past events (resume support, no session effects).

        Consumes exactly the generator draws and column allocations the
        original run did, so a track replayed to a checkpoint's slot is
        indistinguishable from the one that produced it.
        """
        for event in events:
            if event.kind == "join":
                self.join(event.count)
            elif event.kind == "leave":
                self.leave(event.count)
            else:
                self.crash(event.count)


__all__ = ["EVENT_KINDS", "ChurnEvent", "ChurnSchedule", "MembershipTrack"]
