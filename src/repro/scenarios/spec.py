"""Scenario specifications: link model × churn schedule × trace source.

A :class:`ScenarioSpec` is a cheap, validated value object describing
one complete replay: which trace loader feeds the fleet, how big the
fleet starts and may grow, which transmission policy runs, what the
link between nodes and controller looks like, and when membership
changes.  Builders registered in :data:`repro.registry.SCENARIOS`
return these; :func:`repro.scenarios.harness.run_scenario` executes
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.core.config import PipelineConfig
from repro.datasets import (
    TraceDataset,
    load_alibaba_like,
    load_bitbrains_like,
    load_google_like,
    load_sensor_like,
)
from repro.exceptions import ConfigurationError
from repro.scenarios.churn import ChurnSchedule
from repro.scenarios.links import LinkConfig

#: Trace source name → loader ``(num_nodes=…, num_steps=…) -> TraceDataset``.
TRACE_SOURCES: Dict[str, Callable[..., TraceDataset]] = {
    "alibaba": load_alibaba_like,
    "google": load_google_like,
    "bitbrains": load_bitbrains_like,
    "sensor": load_sensor_like,
}


def _default_config() -> PipelineConfig:
    # Scenario replays are short (a few hundred slots), so collection
    # and retraining are tightened relative to PipelineConfig.small().
    return PipelineConfig.small(
        initial_collection=40, retrain_interval=60, max_horizon=3
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible scenario description.

    Args:
        name: Scenario name (also the registry key for built-ins).
        source: Trace loader, a :data:`TRACE_SOURCES` key.
        resource: Resource plane of the trace to replay (e.g. ``"cpu"``;
            the sensor trace exposes ``"temperature"``/``"humidity"``).
        num_steps: Slots to replay (also the generated trace length).
        total_nodes: Trace columns generated — the ceiling the fleet
            can grow to via joins.
        initial_nodes: Fleet size at slot 0.
        policy: Transmission-policy name.
        seed: Seed of the membership track's victim selection.
        link: Link-model parameters (default: ideal).
        churn: Membership schedule (None: static fleet).
        reorder_window: Session late-arrival tolerance; None derives
            ``link.latency + 8`` (delayed deliveries must fit).
        config: Pipeline configuration; None uses a tightened
            :meth:`PipelineConfig.small
            <repro.core.config.PipelineConfig.small>`.
        vectorized: Forwarded to the session (slot path selection).
    """

    name: str
    source: str = "alibaba"
    resource: str = "cpu"
    num_steps: int = 240
    total_nodes: int = 32
    initial_nodes: int = 24
    policy: str = "adaptive"
    seed: int = 0
    link: LinkConfig = field(default_factory=LinkConfig)
    churn: Optional[ChurnSchedule] = None
    reorder_window: Optional[int] = None
    config: Optional[PipelineConfig] = None
    vectorized: Optional[bool] = None

    def validate(self) -> None:
        if self.source not in TRACE_SOURCES:
            raise ConfigurationError(
                f"unknown trace source {self.source!r}; available: "
                f"{', '.join(sorted(TRACE_SOURCES))}"
            )
        if self.num_steps < 1:
            raise ConfigurationError(
                f"num_steps must be >= 1, got {self.num_steps}"
            )
        if self.initial_nodes < 1:
            raise ConfigurationError(
                f"initial_nodes must be >= 1, got {self.initial_nodes}"
            )
        if self.initial_nodes > self.total_nodes:
            raise ConfigurationError(
                f"initial_nodes {self.initial_nodes} exceeds total_nodes "
                f"{self.total_nodes}"
            )
        if self.reorder_window is not None and self.reorder_window < 0:
            raise ConfigurationError(
                f"reorder_window must be >= 0, got {self.reorder_window}"
            )
        if self.churn is not None:
            for event in self.churn:
                if event.slot >= self.num_steps:
                    raise ConfigurationError(
                        f"churn event at slot {event.slot} beyond the "
                        f"scenario's {self.num_steps} slots"
                    )

    @property
    def effective_reorder_window(self) -> int:
        """The session's late-arrival tolerance for this scenario.

        Delayed deliveries arrive at least one slot late and contention
        can hold a message back several more, so the derived default
        leaves the link's latency plus slack.
        """
        if self.reorder_window is not None:
            return self.reorder_window
        return int(self.link.latency) + 8

    @property
    def pipeline_config(self) -> PipelineConfig:
        """The resolved pipeline configuration."""
        return self.config if self.config is not None else _default_config()

    def with_steps(self, num_steps: int) -> "ScenarioSpec":
        """A copy replaying ``num_steps`` slots (CLI ``--steps``).

        Churn events beyond the new horizon are dropped so the copy
        still validates.
        """
        churn = self.churn
        if churn is not None:
            churn = ChurnSchedule(
                event for event in churn if event.slot < int(num_steps)
            )
            if not len(churn):
                churn = None
        return replace(self, num_steps=int(num_steps), churn=churn)


__all__ = ["TRACE_SOURCES", "ScenarioSpec"]
