"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything raised by this package with a single
``except`` clause while still being able to handle specific failure
modes individually.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent combination of parameters."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge."""


class DataError(ReproError):
    """Input data is malformed (wrong shape, NaNs, empty series, ...)."""


class SimulationError(ReproError):
    """The simulation loop reached an inconsistent internal state."""


class CheckpointError(ReproError):
    """A checkpoint artifact cannot be written, read, or applied.

    Covers unserializable component state, corrupt or truncated
    artifacts, format-version mismatches, and resuming against an
    engine whose configuration contradicts the checkpoint's.
    """
