"""Error metrics from Sec. IV of the paper.

The paper defines three related quantities:

* ``RMSE(t, h)`` (Eq. 3): instantaneous root-mean-square error of the
  per-node estimates ``x̂_{i,t+h}`` against the true values ``x_{i,t+h}``,
  averaged over nodes.
* ``RMSE(T, h)`` (Eq. 4): the time-average of the squared instantaneous
  errors over ``T`` steps, square-rooted afterwards.
* The *intermediate RMSE* (Sec. VI-C): the same computation where the
  per-node estimate is the centroid of the node's cluster with no per-node
  offset — it measures pure clustering quality.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DataError


def instantaneous_rmse(estimates: np.ndarray, truth: np.ndarray) -> float:
    """Compute ``RMSE(t, h)`` per Eq. 3.

    Args:
        estimates: Array of shape ``(N, d)`` holding ``x̂_{i,t+h}`` for
            every node ``i``, or 1-D of shape ``(N,)`` for ``N``
            scalar-valued nodes.  2-D input is always interpreted as
            ``(N, d)`` — in particular ``(1, d)`` is one node with a
            d-vector measurement, not ``d`` scalar nodes.
        truth: Array of the same shape holding the true ``x_{i,t+h}``.

    Returns:
        ``sqrt((1/N) * sum_i ||x̂_i − x_i||²)``.
    """
    est = np.asarray(estimates, dtype=float)
    tru = np.asarray(truth, dtype=float)
    if est.shape != tru.shape:
        raise DataError(
            f"estimate shape {est.shape} != truth shape {tru.shape}"
        )
    if est.ndim <= 1:
        # Scalar → one node; (N,) vector → N scalar-valued nodes.
        est = est.reshape(-1, 1)
        tru = tru.reshape(-1, 1)
    num_nodes = est.shape[0]
    sq = np.sum((est - tru) ** 2, axis=tuple(range(1, est.ndim)))
    return float(np.sqrt(np.sum(sq) / num_nodes))


def instantaneous_rmse_batch(
    estimates: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Per-slot ``RMSE(t, h)`` for a whole trajectory at once.

    Vectorized twin of :func:`instantaneous_rmse` over stacked slots:
    one array operation instead of one Python call per slot.

    Args:
        estimates: Shape ``(T, N, d)`` (or ``(T, N)`` for scalar nodes).
        truth: Array of the same shape.

    Returns:
        Shape ``(T,)`` of per-slot RMSE values, each identical to
        calling :func:`instantaneous_rmse` on that slot.
    """
    est = np.asarray(estimates, dtype=float)
    tru = np.asarray(truth, dtype=float)
    if est.shape != tru.shape:
        raise DataError(
            f"estimate shape {est.shape} != truth shape {tru.shape}"
        )
    if est.ndim == 2:
        est = est[:, :, np.newaxis]
        tru = tru[:, :, np.newaxis]
    if est.ndim != 3:
        raise DataError(
            f"expected (T, N, d) or (T, N) stacks, got shape {est.shape}"
        )
    num_nodes = est.shape[1]
    sq = ((est - tru) ** 2).sum(axis=2).sum(axis=1)
    return np.sqrt(sq / num_nodes)


def time_averaged_rmse(instantaneous: Iterable[float]) -> float:
    """Compute ``RMSE(T, h)`` per Eq. 4 from instantaneous RMSE values.

    The average is taken over the *squared* errors, then square-rooted —
    note this differs from the mean of the RMSE values themselves.
    """
    values = np.asarray(list(instantaneous), dtype=float)
    if values.size == 0:
        raise DataError("need at least one instantaneous RMSE value")
    return float(np.sqrt(np.mean(values**2)))


def horizon_averaged_rmse(per_horizon: Sequence[float]) -> float:
    """Average RMSE across forecast horizons, per the objective in Eq. 5.

    Args:
        per_horizon: ``RMSE(T, h)`` for each ``h`` in ``0..H``.
    """
    values = np.asarray(per_horizon, dtype=float)
    if values.size == 0:
        raise DataError("need at least one per-horizon RMSE value")
    return float(np.sqrt(np.mean(values**2)))


def intermediate_rmse(
    measurements: np.ndarray, labels: np.ndarray, centroids: np.ndarray
) -> float:
    """RMSE between measurements and their assigned cluster centroids.

    This is the "intermediate RMSE" of Sec. VI-C: each node's estimate is
    the centroid of the cluster it belongs to, with no per-node offset.

    Args:
        measurements: Shape ``(N, d)`` or ``(N,)``.
        labels: Shape ``(N,)`` cluster ids.
        centroids: Shape ``(K, d)`` or ``(K,)``.
    """
    data = np.asarray(measurements, dtype=float)
    cents = np.asarray(centroids, dtype=float)
    if data.ndim == 1:
        data = data[:, np.newaxis]
    if cents.ndim == 1:
        cents = cents[:, np.newaxis]
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != data.shape[0]:
        raise DataError(
            f"{labels.shape[0]} labels for {data.shape[0]} measurements"
        )
    assigned = cents[labels]
    return instantaneous_rmse(assigned, data)


def transmission_frequency(decisions: np.ndarray) -> float:
    """Empirical transmission frequency ``(1/T) * Σ_t β_{i,t}``.

    Args:
        decisions: Binary array; 1-D for a single node or 2-D ``(T, N)``
            (the mean is then taken over all entries).
    """
    arr = np.asarray(decisions, dtype=float)
    if arr.size == 0:
        raise DataError("decisions array is empty")
    return float(arr.mean())


def standard_deviation_bound(trace: np.ndarray) -> float:
    """Error upper bound of an offline long-term-statistics forecaster.

    The paper (Sec. VI-D1) uses the standard deviation of all resource
    utilizations over time as the error an offline mechanism would incur
    if it forecast every node with its long-term mean.  For a trace of
    shape ``(T, N)`` this is ``sqrt(mean_i var_t(x_{i,t}))`` — the RMSE of
    per-node mean predictions.
    """
    arr = np.asarray(trace, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, np.newaxis]
    if arr.ndim != 2:
        raise DataError(f"expected (T, N) trace, got shape {arr.shape}")
    per_node_var = arr.var(axis=0)
    return float(np.sqrt(per_node_var.mean()))
