"""Core: configuration, value types, metrics, and the online pipeline."""

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.core.metrics import (
    horizon_averaged_rmse,
    instantaneous_rmse,
    instantaneous_rmse_batch,
    intermediate_rmse,
    standard_deviation_bound,
    time_averaged_rmse,
    transmission_frequency,
)
from repro.core.pipeline import (
    OnlinePipeline,
    PipelineResult,
    StepOutput,
    default_forecaster_factory,
    run_pipeline,
)
from repro.core.types import (
    ClusterAssignment,
    Forecast,
    Measurement,
    TransmissionRecord,
    partition_from_labels,
    validate_trace,
)

__all__ = [
    "ClusteringConfig",
    "ForecastingConfig",
    "PipelineConfig",
    "TransmissionConfig",
    "horizon_averaged_rmse",
    "instantaneous_rmse",
    "instantaneous_rmse_batch",
    "intermediate_rmse",
    "standard_deviation_bound",
    "time_averaged_rmse",
    "transmission_frequency",
    "OnlinePipeline",
    "PipelineResult",
    "StepOutput",
    "default_forecaster_factory",
    "run_pipeline",
    "ClusterAssignment",
    "Forecast",
    "Measurement",
    "TransmissionRecord",
    "partition_from_labels",
    "validate_trace",
]
