"""Core value types shared across the library.

The paper (Sec. IV) models a distributed system of ``N`` local nodes, each
producing a ``d``-dimensional measurement per time slot (one dimension per
resource type, e.g. CPU and memory).  The types here give those concepts
names so the rest of the code can pass them around explicitly instead of
using bare tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import DataError

#: Index of a local node, ``0 <= node < N``.
NodeId = int

#: Index of a cluster, ``0 <= cluster < K``.
ClusterId = int

#: A cluster partition: ``labels[i]`` is the cluster id of node ``i``.
Labels = np.ndarray


@dataclass(frozen=True)
class Measurement:
    """A single measurement produced by one node at one time step.

    Attributes:
        node: Index of the producing node.
        time: Time-slot index at which the value was *measured* (this can
            lag behind the current slot when transmissions are skipped).
        value: The ``d``-dimensional utilization vector, values in [0, 1].
    """

    node: NodeId
    time: int
    value: np.ndarray

    def __post_init__(self) -> None:
        value = np.asarray(self.value, dtype=float)
        if value.ndim != 1:
            raise DataError(
                f"measurement value must be 1-D, got shape {value.shape}"
            )
        object.__setattr__(self, "value", value)

    @property
    def dimension(self) -> int:
        """Number of resource types in this measurement."""
        return int(self.value.shape[0])


@dataclass(frozen=True)
class ClusterAssignment:
    """Result of one clustering step at the central node.

    Attributes:
        time: The time slot the assignment belongs to.
        labels: Array of shape ``(N,)``; ``labels[i]`` is the (re-indexed)
            cluster id of node ``i`` at this time slot.
        centroids: Array of shape ``(K, d)`` with the centroid of each
            cluster, indexed consistently with ``labels``.
    """

    time: int
    labels: np.ndarray
    centroids: np.ndarray

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=int)
        centroids = np.asarray(self.centroids, dtype=float)
        if labels.ndim != 1:
            raise DataError(f"labels must be 1-D, got shape {labels.shape}")
        if centroids.ndim != 2:
            raise DataError(
                f"centroids must be 2-D, got shape {centroids.shape}"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= len(centroids)):
            raise DataError(
                "labels reference cluster ids outside [0, K): "
                f"min={labels.min()}, max={labels.max()}, K={len(centroids)}"
            )
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "centroids", centroids)

    @property
    def num_clusters(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.labels.shape[0])

    def members(self, cluster: ClusterId) -> np.ndarray:
        """Return the node ids belonging to ``cluster`` (paper's C_{j,t})."""
        return np.flatnonzero(self.labels == cluster)

    def member_sets(self) -> List[set]:
        """Return the partition as a list of ``set`` objects, one per cluster."""
        return [set(self.members(j).tolist()) for j in range(self.num_clusters)]


@dataclass
class Forecast:
    """A multi-horizon forecast made at one time step.

    Attributes:
        made_at: The time slot ``t`` the forecast was issued.
        horizons: The forecast steps ``h`` (e.g. ``[1, 2, ..., H]``).
        node_values: Array of shape ``(len(horizons), N, d)`` with the
            forecasted per-node utilizations ``x̂_{i,t+h}``.
        centroid_values: Array of shape ``(len(horizons), K, d)`` with the
            forecasted centroids ``ĉ_{j,t+h}``.
        memberships: Array of shape ``(N,)`` with the forecasted cluster of
            each node (the paper forecasts a single membership used for all
            horizons).
    """

    made_at: int
    horizons: Sequence[int]
    node_values: np.ndarray
    centroid_values: np.ndarray
    memberships: np.ndarray

    def for_horizon(self, h: int) -> np.ndarray:
        """Return the ``(N, d)`` per-node forecast for horizon ``h``."""
        try:
            idx = list(self.horizons).index(h)
        except ValueError:
            raise DataError(f"horizon {h} not in forecast horizons {self.horizons}")
        return self.node_values[idx]


@dataclass
class TransmissionRecord:
    """Bookkeeping of transmission decisions for one node.

    Attributes:
        node: Node id.
        decisions: ``decisions[t]`` is 1 if the node transmitted in slot t.
    """

    node: NodeId
    decisions: List[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return int(sum(self.decisions))

    @property
    def frequency(self) -> float:
        """Empirical transmission frequency (fraction of slots transmitted)."""
        if not self.decisions:
            return 0.0
        return self.count / len(self.decisions)


def validate_trace(
    trace: np.ndarray, dtype: "np.typing.DTypeLike" = None
) -> np.ndarray:
    """Validate and normalize a trace array to shape ``(T, N, d)``.

    Args:
        trace: Array of measurements.  Accepted shapes are ``(T, N)``
            (single resource, promoted to ``d=1``) and ``(T, N, d)``.
        dtype: Floating dtype of the returned array.  ``None`` (the
            default) keeps a float32/float64 trace in its own dtype —
            so a float32 pipeline's data survives the re-validation
            inside every collection backend — and casts everything else
            (ints, lists) to float64.  A trace already in the requested
            dtype is returned without copying.

    Returns:
        The validated floating array with shape ``(T, N, d)``.

    Raises:
        DataError: If the shape is unsupported or the data contains NaNs.
    """
    arr = np.asarray(trace)
    if dtype is None:
        dtype = arr.dtype if arr.dtype in (np.float32, np.float64) else np.float64
    arr = np.asarray(arr, dtype=dtype)
    if arr.ndim == 2:
        arr = arr[:, :, np.newaxis]
    if arr.ndim != 3:
        raise DataError(
            f"trace must have shape (T, N) or (T, N, d), got {arr.shape}"
        )
    if arr.size == 0:
        raise DataError("trace is empty")
    if not np.isfinite(arr).all():
        raise DataError("trace contains NaN or infinite values")
    return arr


def partition_from_labels(labels: np.ndarray, num_clusters: int) -> Dict[int, set]:
    """Convert a label array into ``{cluster_id: set(node_ids)}``.

    Empty clusters are represented with empty sets so that every cluster id
    in ``range(num_clusters)`` is a key.
    """
    labels = np.asarray(labels, dtype=int)
    partition: Dict[int, set] = {j: set() for j in range(num_clusters)}
    for node, label in enumerate(labels):
        if label < 0 or label >= num_clusters:
            raise DataError(
                f"label {label} for node {node} outside [0, {num_clusters})"
            )
        partition[int(label)].add(node)
    return partition
