"""End-to-end online pipeline (Fig. 2 of the paper).

Per time slot the pipeline:

1. lets every local node run its transmission policy, updating the
   central store ``z_t`` (adaptive Lyapunov policy by default);
2. dynamically clusters the stored measurements — by default each
   resource type independently on scalar values (Table I's winner) —
   re-indexing clusters against history so centroid time series are
   coherent;
3. once the initial collection phase has passed, trains/updates the
   per-group :class:`~repro.forecasting.bank.ForecasterBank` — every
   cluster's model of a resource group in one batched call — forecasts
   centroids ``ĉ_{j,t+h}``, forecasts memberships by majority vote over
   ``[t − M', t]``, computes α-clipped per-node offsets (Eq. 12), and
   emits per-node forecasts ``x̂_{i,t+h} = ĉ_{j,t+h} + ŝ_{i,t+h}``.

The pipeline is strictly online: at slot ``t`` it has seen nothing beyond
``t``.  Use :func:`run_pipeline` to drive it over a recorded trace and
collect the paper's RMSE metrics.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulation.transport import TransportStats

from repro._compat import warn_once
from repro.core.config import PipelineConfig
from repro.core.ring import SlotRing
from repro.core.types import ClusterAssignment
from repro.clustering.dynamic import DynamicClusterTracker
from repro.exceptions import ConfigurationError, DataError, ReproError
from repro.forecasting.bank import (
    BankForecastError,
    ForecasterBank,
    ForecasterFactory,
    default_forecaster_factory as default_forecaster_factory,
    resolve_bank,
)
from repro.forecasting.membership import forecast_membership
from repro.forecasting.offsets import estimate_offsets

logger = logging.getLogger(__name__)


@dataclass
class StepOutput:
    """What the pipeline emits after processing one slot.

    Aligned with :class:`repro.api.RunResult`: when the slot ran through
    a streaming session (:meth:`repro.session.StreamSession.ingest` or
    :meth:`repro.api.Engine.step`), it additionally carries the slot's
    transport delta and per-stage wall-clock timings, so streaming and
    batch results are inspectable the same way.

    Attributes:
        time: The slot index ``t``.
        stored: The central store ``z_t``, shape ``(N, d)``.
        assignments: One :class:`ClusterAssignment` per resource group
            (d entries under scalar clustering, 1 under joint clustering).
        node_forecasts: ``{h: (N, d) array}`` of per-node forecasts
            ``x̂_{i,t+h}``, or None before forecasting starts.
        centroid_forecasts: ``{h: (K, d) array}`` of forecasted centroids.
        memberships: Forecasted cluster per node and resource group,
            shape ``(groups, N)``; None before forecasting starts.
        transport: *This slot's* message/byte counters (not cumulative)
            — a :class:`~repro.simulation.transport.TransportStats`
            delta.  None when the pipeline ran outside a session.
        timings: Wall-clock seconds per stage for this slot
            (``collection``, ``clustering``, ``training``,
            ``forecasting``, ``total``), mirroring
            :attr:`repro.api.RunResult.timings`.  None outside a
            session.
        late_applied: The session's *cumulative* applied-late-arrival
            counter at the close of this slot (see
            :meth:`repro.session.StreamSession.ingest`).  None outside
            a session.
        late_dropped: Cumulative dropped-late-arrival counter at the
            close of this slot.  None outside a session.
    """

    time: int
    stored: np.ndarray
    assignments: List[ClusterAssignment]
    node_forecasts: Optional[Dict[int, np.ndarray]] = None
    centroid_forecasts: Optional[Dict[int, np.ndarray]] = None
    memberships: Optional[np.ndarray] = None
    transport: Optional["TransportStats"] = None
    timings: Optional[Dict[str, float]] = None
    late_applied: Optional[int] = None
    late_dropped: Optional[int] = None


class OnlinePipeline:
    """Streaming pipeline over the central store ``z_t``.

    The pipeline consumes *stored* measurements (the transmission stage
    runs separately — see :func:`run_pipeline` — so that any collection
    policy can feed it).

    Args:
        num_nodes: Number of local nodes N.
        num_resources: Resource dimensionality d.
        config: Full pipeline configuration.
        forecaster_factory: Override the model construction; receives
            ``(cluster_id, group_index)`` — see :data:`ForecasterFactory`.
    """

    def __init__(
        self,
        num_nodes: int,
        num_resources: int,
        config: PipelineConfig = PipelineConfig(),
        *,
        forecaster_factory: Optional[ForecasterFactory] = None,
    ) -> None:
        if num_nodes < 1 or num_resources < 1:
            raise ConfigurationError("num_nodes and num_resources must be >= 1")
        self.num_nodes = num_nodes
        self.num_resources = num_resources
        self.config = config
        self._dtype = config.np_dtype
        clustering = config.clustering
        if clustering.scalar_per_resource:
            self._groups: List[List[int]] = [[r] for r in range(num_resources)]
        else:
            self._groups = [list(range(num_resources))]
        self._trackers = [
            DynamicClusterTracker(
                clustering.num_clusters,
                history_depth=clustering.history_depth,
                similarity=clustering.similarity,
                restarts=clustering.kmeans_restarts,
                warm_start=clustering.warm_start,
                seed=None if clustering.seed is None else clustering.seed + g,
            )
            for g in range(len(self._groups))
        ]
        # One bank per resource group: the whole model layer of a group
        # — every (cluster, dim) series — fits, updates and forecasts
        # as a single batched call (ObjectBank adapts per-cluster
        # forecasters when no vectorized bank exists for the model).
        self._banks: List[ForecasterBank] = [
            resolve_bank(
                config.forecasting,
                num_clusters=clustering.num_clusters,
                dim=len(group),
                group=g,
                factory=forecaster_factory,
                dtype=self._dtype,
            )
            for g, group in enumerate(self._groups)
        ]
        # Only the last M'+1 slots feed the membership forecast and the
        # offset estimation, so these rolling windows are bounded at
        # O(window · N · d) — preallocated rings, not deques of per-slot
        # arrays, so steady-state appends allocate nothing.  (The
        # trackers' centroid/assignment histories still grow with the
        # stream — full centroid series are needed for model training.)
        window = config.forecasting.membership_lookback + 1
        self._stored_history = SlotRing(window)
        self._label_history: List[SlotRing] = [
            SlotRing(window) for _ in self._groups
        ]
        self._time = 0
        self._last_train: Optional[int] = None
        #: Cumulative wall-clock seconds per stage across all steps.
        self.stage_seconds: Dict[str, float] = {
            "clustering": 0.0, "training": 0.0, "forecasting": 0.0,
        }

    @property
    def time(self) -> int:
        return self._time

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    @property
    def groups(self) -> Tuple[Tuple[int, ...], ...]:
        """Resource groups clustered together, as resource-index tuples.

        ``((0,), (1,), …)`` under scalar (per-resource) clustering, a
        single ``(0, 1, …, d-1)`` group under joint clustering.
        """
        return tuple(tuple(group) for group in self._groups)

    def tracker(self, group: int) -> DynamicClusterTracker:
        """Access the dynamic tracker of one resource group."""
        return self._trackers[group]

    def bank(self, group: int) -> ForecasterBank:
        """Access the forecaster bank of one resource group."""
        return self._banks[group]

    def _should_train(self) -> bool:
        forecasting = self.config.forecasting
        if self._time + 1 < forecasting.initial_collection:
            return False
        if self._last_train is None:
            return True
        return self._time - self._last_train >= forecasting.retrain_interval

    def _forecasting_active(self) -> bool:
        return self._last_train is not None

    def step(self, stored: np.ndarray) -> StepOutput:
        """Process one slot of stored measurements ``z_t``.

        Args:
            stored: Shape ``(N, d)`` (or ``(N,)`` when d = 1).

        Returns:
            The :class:`StepOutput` with clustering results and, once the
            initial collection phase has passed, multi-horizon forecasts.
        """
        z = np.asarray(stored, dtype=self._dtype)
        if z.ndim == 1:
            z = z[:, np.newaxis]
        if z.shape != (self.num_nodes, self.num_resources):
            raise DataError(
                f"stored must be ({self.num_nodes}, {self.num_resources}), "
                f"got {z.shape}"
            )
        self._stored_history.append(z)  # the ring copies into its buffer

        started = time.perf_counter()
        assignments = []
        for g, group in enumerate(self._groups):
            values = z[:, group]
            assignment = self._trackers[g].update(values)
            assignments.append(assignment)
            self._label_history[g].append(assignment.labels)
        self.stage_seconds["clustering"] += time.perf_counter() - started

        started = time.perf_counter()
        if self._should_train():
            self._train_models()
        elif self._forecasting_active():
            self._update_models(assignments)
        self.stage_seconds["training"] += time.perf_counter() - started

        output = StepOutput(
            time=self._time, stored=z.copy(), assignments=assignments
        )
        if self._forecasting_active():
            started = time.perf_counter()
            self._forecast_into(output, assignments)
            self.stage_seconds["forecasting"] += time.perf_counter() - started
        self._time += 1
        return output

    # ------------------------------------------------------------------
    # Fleet churn (node-axis remapping)
    # ------------------------------------------------------------------

    def reindex_nodes(self, index_map: np.ndarray) -> None:
        """Adopt a new fleet geometry (grow/compact) mid-stream.

        The pipeline's node-aligned state is bounded: the stored-value
        and label history rings plus each tracker's remembered
        labellings.  All are remapped as ``new[i] = old[index_map[i]]``
        (``-1`` marks a joined node: zero stored history, label 0 until
        its own labels fill the window).  Cluster-level state — the
        forecaster banks and centroid histories — is node-free and
        untouched, so forecasts continue seamlessly across churn.

        Args:
            index_map: int array, one entry per *new* node: the old
                node index it descends from, or ``-1`` for a join.
        """
        index_map = np.asarray(index_map, dtype=np.int64).ravel()
        if index_map.size < 1:
            raise ConfigurationError("index_map must cover >= 1 node")
        self.num_nodes = int(index_map.size)
        self._stored_history.reindex(index_map, fill=0.0)
        for ring in self._label_history:
            ring.reindex(index_map, fill=0)
        for tracker in self._trackers:
            tracker.reindex_nodes(index_map, fill_label=0)

    # ------------------------------------------------------------------
    # Checkpoint state contract
    # ------------------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Serializable pipeline state (checkpoint contract).

        Composes the state contracts of every owned component — the
        bounded history rings, one
        :class:`~repro.clustering.dynamic.DynamicClusterTracker` and one
        :class:`~repro.forecasting.bank.ForecasterBank` per resource
        group — plus the pipeline's own clock, retrain schedule and
        cumulative stage timings.
        """
        return {
            "time": self._time,
            "num_nodes": self.num_nodes,
            "last_train": self._last_train,
            "stage_seconds": dict(self.stage_seconds),
            "stored_history": self._stored_history.get_state(),
            "label_history": [
                ring.get_state() for ring in self._label_history
            ],
            "trackers": [t.get_state() for t in self._trackers],
            "banks": [b.get_state() for b in self._banks],
        }

    def set_state(
        self, state: Dict[str, object], *, adopt: bool = False
    ) -> None:
        """Restore a state captured by :meth:`get_state`.

        The pipeline must have been constructed with the same
        configuration and dimensions (group structure and bank types are
        set at construction; the state carries only their contents).

        Args:
            adopt: Adopt the node-aligned history windows (the state's
                dominant arrays) as ring buffers without copying — the
                zero-copy checkpoint-resume path.  Cluster-level state
                (trackers, banks) is small and always copied.
        """
        groups = len(self._groups)
        for key in ("label_history", "trackers", "banks"):
            if len(state[key]) != groups:
                raise DataError(
                    f"state holds {len(state[key])} {key} entries, "
                    f"pipeline has {groups} resource groups"
                )
        self._time = int(state["time"])
        # Older checkpoints predate fleet churn and carry no geometry;
        # they were always resumed at the constructed size.
        self.num_nodes = int(state.get("num_nodes", self.num_nodes))
        last_train = state["last_train"]
        self._last_train = None if last_train is None else int(last_train)
        self.stage_seconds = {
            stage: float(seconds)
            for stage, seconds in state["stage_seconds"].items()
        }
        self._stored_history.set_state(state["stored_history"], adopt=adopt)
        for ring, ring_state in zip(
            self._label_history, state["label_history"]
        ):
            ring.set_state(ring_state, adopt=adopt)
        for tracker, tracker_state in zip(self._trackers, state["trackers"]):
            tracker.set_state(tracker_state)
        for bank, bank_state in zip(self._banks, state["banks"]):
            bank.set_state(bank_state)

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------

    def _train_models(self) -> None:
        # One batched fit per group: the bank consumes the whole
        # (t, K, d) centroid tensor at once.
        for g in range(self.num_groups):
            self._banks[g].fit(self._trackers[g].centroid_tensor())
        self._last_train = self._time

    def _update_models(self, assignments: Sequence[ClusterAssignment]) -> None:
        for g, assignment in enumerate(assignments):
            self._banks[g].update(assignment.centroids)

    def _forecast_into(
        self, output: StepOutput, assignments: Sequence[ClusterAssignment]
    ) -> None:
        forecasting = self.config.forecasting
        clustering = self.config.clustering
        horizon = forecasting.max_horizon
        lookback = forecasting.membership_lookback

        node_forecasts = {
            h: np.zeros((self.num_nodes, self.num_resources), dtype=self._dtype)
            for h in range(1, horizon + 1)
        }
        centroid_forecasts = {
            h: np.zeros(
                (clustering.num_clusters, self.num_resources),
                dtype=self._dtype,
            )
            for h in range(1, horizon + 1)
        }
        memberships_all = np.zeros((self.num_groups, self.num_nodes), dtype=int)

        for g, group in enumerate(self._groups):
            # Forecast all clusters of this group in one bank call.
            # Failed clusters fall back to holding their last centroid:
            # per cluster when the bank reports partial failure, for
            # the whole group when the bank fails outright.
            try:
                per_cluster = self._banks[g].forecast(horizon)
            except BankForecastError as exc:
                per_cluster = exc.forecasts
                for j in sorted(exc.failures):
                    logger.warning(
                        "forecast failed for group %d cluster %d: %s; "
                        "holding last centroid", g, j, exc.failures[j],
                    )
                    per_cluster[:, j, :] = assignments[g].centroids[j]
            except ReproError as exc:
                logger.warning(
                    "forecast failed for group %d: %s; "
                    "holding last centroids", g, exc,
                )
                per_cluster = np.broadcast_to(
                    assignments[g].centroids,
                    (horizon, clustering.num_clusters, len(group)),
                ).copy()

            memberships = forecast_membership(
                list(self._label_history[g]), lookback
            )
            memberships_all[g] = memberships

            # The ring's maxlen is exactly lookback + 1 (set in
            # __init__), so the whole window is the whole ring.
            window = len(self._stored_history)
            stored_group = [z[:, group] for z in self._stored_history]
            centroid_group = [
                a.centroids for a in self._trackers[g].assignments[-window:]
            ]
            offsets = estimate_offsets(
                stored_group, centroid_group, memberships, lookback
            )

            for h in range(1, horizon + 1):
                centroid_forecasts[h][:, group] = per_cluster[h - 1]
                node_forecasts[h][:, group] = (
                    per_cluster[h - 1][memberships] + offsets
                )

        output.node_forecasts = node_forecasts
        output.centroid_forecasts = centroid_forecasts
        output.memberships = memberships_all


@dataclass
class PipelineResult:
    """Batch-run outcome with the paper's metrics.

    Attributes:
        stored: Central-store trajectory ``(T, N, d)``.
        decisions: Transmission decisions ``(T, N)``.
        rmse_by_horizon: ``{h: RMSE(T, h)}`` time-averaged per Eq. 4,
            evaluated over all slots where both forecast and truth exist
            (``h = 0`` is the pure collection error ``z`` vs ``x``).
        intermediate_rmse: Time-averaged centroid-vs-data RMSE per
            resource group (Sec. VI-C), averaged across groups.
        forecast_start: First slot index with forecasts available.
    """

    stored: np.ndarray
    decisions: np.ndarray
    rmse_by_horizon: Dict[int, float]
    intermediate_rmse: float
    forecast_start: int


def run_pipeline(
    trace: np.ndarray,
    config: PipelineConfig = PipelineConfig(),
    *,
    collection: str = "adaptive",
    forecaster_factory: Optional[ForecasterFactory] = None,
    horizons: Optional[Sequence[int]] = None,
) -> PipelineResult:
    """Run collection + clustering + forecasting over a recorded trace.

    .. deprecated::
        ``run_pipeline`` is a thin wrapper kept for compatibility; use
        :class:`repro.api.Engine` —
        ``Engine(config, collection=...).run(trace)`` — which returns
        the same numbers plus transport stats and per-stage timings.

    Args:
        trace: True measurements, shape ``(T, N)`` or ``(T, N, d)``.
        config: Pipeline configuration.
        collection: Any backend registered in
            :data:`repro.registry.COLLECTION_BACKENDS` (``"adaptive"``
            is the paper's policy; ``"perfect"`` has no staleness).
        forecaster_factory: Optional model override.
        horizons: Horizons to evaluate; default ``0..max_horizon``.

    Returns:
        The :class:`repro.api.RunResult` (a :class:`PipelineResult`)
        with RMSE per horizon.
    """
    warn_once(
        "run_pipeline",
        "run_pipeline is deprecated; use "
        "repro.api.Engine(config, collection=...).run(trace)",
    )
    from repro.api import Engine

    engine = Engine(
        config, collection=collection, forecaster_factory=forecaster_factory
    )
    return engine.run(trace, horizons=horizons)
