"""Configuration dataclasses with the paper's default parameters.

Defaults follow Sec. VI-A2 of the paper: transmission budget ``B = 0.3``,
Lyapunov control parameters ``V0 = 1e-12`` and ``γ = 0.65``, ``K = 3``
clusters, similarity look-back ``M = 1``, forecasting look-back
``M' = 5``, scalar (per-resource-type) clustering, initial data-collection
phase of 1000 steps, and model retraining every 288 steps.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.registry import (
    FORECASTERS,
    FORECASTER_BANKS,
    SIMILARITY_MEASURES,
    closest,
)


@dataclass(frozen=True)
class TransmissionConfig:
    """Parameters of the adaptive transmission algorithm (Sec. V-A).

    Attributes:
        budget: Maximum long-run transmission frequency ``B`` in (0, 1].
        v0: Initial trade-off weight ``V0`` in ``V_t = V0 * (t+1)**gamma``.
            The paper states ``V0 = 1e-12``, but on measurements
            normalized to [0, 1] that makes the penalty term ``V_t·F``
            (≤ ~1e-9) unable to ever compete with the queue term (quantum
            ``B``), degenerating the policy to periodic transmission.  We
            default to ``V0 = 1.0``, calibrated so the drift/penalty
            trade-off is active at this data scale while the empirical
            frequency still tracks ``B`` tightly (see DESIGN.md §3).
        gamma: Growth exponent ``γ`` in (0, 1) (paper: 0.65).
        deadband_delta: Half-width δ of the deadband (send-on-delta)
            baseline policy/backend — only consumed when the
            ``"deadband"`` registry entries are selected.
    """

    budget: float = 0.3
    v0: float = 1.0
    gamma: float = 0.65
    deadband_delta: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ConfigurationError(f"budget must be in (0, 1], got {self.budget}")
        if self.v0 <= 0:
            raise ConfigurationError(f"v0 must be positive, got {self.v0}")
        if not 0.0 < self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1), got {self.gamma}")
        if self.deadband_delta <= 0:
            raise ConfigurationError(
                f"deadband_delta must be positive, got {self.deadband_delta}"
            )


@dataclass(frozen=True)
class ClusteringConfig:
    """Parameters of the dynamic clustering algorithm (Sec. V-B).

    Attributes:
        num_clusters: Number of clusters ``K`` (= number of forecast models).
        history_depth: Look-back ``M`` in the similarity measure (Eq. 10).
        similarity: Any name registered in
            :data:`repro.registry.SIMILARITY_MEASURES` —
            ``"intersection"`` for the paper's measure (Eq. 10),
            ``"jaccard"`` for the normalized alternative (Fig. 11).
        window: Temporal clustering window length (Fig. 5); 1 means
            clustering on single-time-step measurements (the paper's best).
        scalar_per_resource: If True, cluster each resource type
            independently on scalar values (Table I's winner); if False,
            cluster the full d-dimensional vectors jointly.
        kmeans_restarts: Number of k-means++ restarts per step.
        warm_start: Seed each slot's K-means with the previous slot's
            centroids (see :class:`~repro.clustering.dynamic.
            DynamicClusterTracker`).  A large speedup for long-lived
            streaming sessions on slowly drifting fleets — Lloyd
            converges in a couple of iterations instead of starting
            from scratch every slot.  The paper does not specify this;
            default off (it changes the K-means trajectory, so enable
            it deliberately).
        seed: Seed for the clustering RNG.
    """

    num_clusters: int = 3
    history_depth: int = 1
    similarity: str = "intersection"
    window: int = 1
    scalar_per_resource: bool = True
    kmeans_restarts: int = 3
    warm_start: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigurationError(
                f"num_clusters must be >= 1, got {self.num_clusters}"
            )
        if self.history_depth < 1:
            raise ConfigurationError(
                f"history_depth (M) must be >= 1, got {self.history_depth}"
            )
        if self.similarity not in SIMILARITY_MEASURES:
            raise ConfigurationError(
                SIMILARITY_MEASURES.unknown_message(self.similarity)
            )
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if self.kmeans_restarts < 1:
            raise ConfigurationError(
                f"kmeans_restarts must be >= 1, got {self.kmeans_restarts}"
            )


@dataclass(frozen=True)
class ForecastingConfig:
    """Parameters of the temporal forecasting stage (Sec. V-C, VI-A3).

    Attributes:
        model: Any name registered in
            :data:`repro.registry.FORECASTERS`: ``"arima"``, ``"lstm"``,
            ``"sample_hold"``, ``"mean"``, ``"ses"`` (simple exponential
            smoothing), ``"holt"``, ``"holt_winters"``, or ``"ar"``
            (Yule–Walker AR).  The paper evaluates the first three; the
            rest are the "etc." of Sec. V-C.
        bank: How the per-cluster models are executed.  ``"auto"``
            (default) runs the model through its vectorized
            :class:`~repro.forecasting.bank.ForecasterBank` when one is
            registered in :data:`repro.registry.FORECASTER_BANKS`
            (``"sample_hold"``, ``"mean"``, ``"ses"``, ``"ar"``) and
            through the per-object :class:`~repro.forecasting.bank.
            ObjectBank` adapter otherwise; ``"object"`` forces the
            adapter; naming the model itself (``bank == model``)
            *requires* the vectorized path, failing loudly when the
            model has no registered bank instead of falling back.  A
            bank name that contradicts ``model`` is rejected, so bank
            choice never changes the numbers — vectorized banks are
            pinned bit-identical to the object path.
        membership_lookback: Look-back ``M'`` for forecasting cluster
            membership and computing per-node offsets (Eq. 12).
        initial_collection: Number of initial steps with no forecasting
            model (paper: 1000).
        retrain_interval: Steps between model retrainings (paper: 288).
        max_horizon: Largest forecasting step ``H``.
        arima_max_p, arima_max_d, arima_max_q: Non-seasonal grid bounds.
        arima_max_P, arima_max_D, arima_max_Q: Seasonal grid bounds.
        arima_seasonal_period: Season length ``s`` (0 disables the seasonal
            component entirely).
        lstm_hidden: Hidden units per LSTM layer.
        lstm_lookback: Input window length for the LSTM.
        lstm_epochs: Training epochs per (re)training.
        hw_period: Season length for the Holt–Winters model.
        ar_order: Order p for the Yule–Walker AR model.
        seed: Seed for stochastic models (LSTM initialization).
    """

    model: str = "sample_hold"
    bank: str = "auto"
    membership_lookback: int = 5
    initial_collection: int = 1000
    retrain_interval: int = 288
    max_horizon: int = 5
    arima_max_p: int = 5
    arima_max_d: int = 2
    arima_max_q: int = 5
    arima_max_P: int = 2
    arima_max_D: int = 1
    arima_max_Q: int = 2
    arima_seasonal_period: int = 0
    lstm_hidden: int = 32
    lstm_lookback: int = 16
    lstm_epochs: int = 20
    hw_period: int = 288
    ar_order: int = 2
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.model not in FORECASTERS:
            raise ConfigurationError(FORECASTERS.unknown_message(self.model))
        if self.bank not in ("auto", "object"):
            # The bank selects an execution path for the configured
            # model, never a different model: the only explicit name
            # allowed is the model's own (requiring its vectorized
            # bank), so bank choice cannot change the numbers.
            if self.bank != self.model:
                raise ConfigurationError(
                    f"bank {self.bank!r} contradicts model "
                    f"{self.model!r}; use 'auto', 'object', or "
                    f"{self.model!r} to require its vectorized bank"
                )
            if self.bank not in FORECASTER_BANKS:
                raise ConfigurationError(
                    f"model {self.model!r} has no vectorized forecaster "
                    f"bank; available: "
                    f"{', '.join(FORECASTER_BANKS.available())} "
                    f"(use bank='auto' or 'object')"
                )
        if self.membership_lookback < 1:
            raise ConfigurationError(
                f"membership_lookback (M') must be >= 1, got "
                f"{self.membership_lookback}"
            )
        if self.initial_collection < 1:
            raise ConfigurationError(
                "initial_collection must be >= 1, got "
                f"{self.initial_collection}"
            )
        if self.retrain_interval < 1:
            raise ConfigurationError(
                f"retrain_interval must be >= 1, got {self.retrain_interval}"
            )
        if self.max_horizon < 1:
            raise ConfigurationError(
                f"max_horizon must be >= 1, got {self.max_horizon}"
            )
        for name in (
            "arima_max_p",
            "arima_max_d",
            "arima_max_q",
            "arima_max_P",
            "arima_max_D",
            "arima_max_Q",
            "arima_seasonal_period",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.lstm_hidden < 1 or self.lstm_lookback < 1 or self.lstm_epochs < 1:
            raise ConfigurationError("LSTM parameters must be >= 1")
        if self.hw_period < 2:
            raise ConfigurationError("hw_period must be >= 2")
        if self.ar_order < 1:
            raise ConfigurationError("ar_order must be >= 1")


def _section_from_mapping(cls: type, mapping: Mapping, section: str) -> Any:
    """Build one stage config from a mapping, rejecting unknown keys."""
    if not isinstance(mapping, Mapping):
        raise ConfigurationError(
            f"{section!r} section must be a mapping, got "
            f"{type(mapping).__name__}"
        )
    allowed = {f.name for f in fields(cls)}
    for key in mapping:
        if key not in allowed:
            raise ConfigurationError(
                f"unknown {section} option {key!r}"
                f"{closest(key, allowed)}"
            )
    return cls(**dict(mapping))


#: Column dtypes a pipeline can run with.  float64 is the default and
#: the bit-identity-pinned reference; float32 halves the fleet's memory
#: footprint (the N=1M regime) at tolerance-level equivalence.
SUPPORTED_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class PipelineConfig:
    """Top-level configuration bundling the three stages.

    Attributes:
        dtype: Floating-point dtype of every fleet column, slot-kernel
            working array and forecaster-bank state — ``"float64"``
            (default, bit-identity reference) or ``"float32"`` (half the
            memory; results pinned to float64 at tolerance, not
            bit-identity).  Recorded in checkpoint manifests; resuming a
            checkpoint under a different dtype raises
            :class:`~repro.exceptions.CheckpointError`.
    """

    transmission: TransmissionConfig = field(default_factory=TransmissionConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    forecasting: ForecastingConfig = field(default_factory=ForecastingConfig)
    dtype: str = "float64"

    #: Stage section name → config class (the to_dict/from_dict schema).
    _SECTIONS = (
        ("transmission", TransmissionConfig),
        ("clustering", ClusteringConfig),
        ("forecasting", ForecastingConfig),
    )

    def __post_init__(self) -> None:
        if self.dtype not in SUPPORTED_DTYPES:
            raise ConfigurationError(
                f"dtype must be one of {', '.join(SUPPORTED_DTYPES)}, "
                f"got {self.dtype!r}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        """The configured column dtype as a numpy dtype object."""
        return np.dtype(self.dtype)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; round-trips through :meth:`from_dict`."""
        out: Dict[str, Any] = {
            name: asdict(getattr(self, name)) for name, _ in self._SECTIONS
        }
        out["dtype"] = self.dtype
        return out

    @classmethod
    def from_dict(cls, mapping: Mapping) -> "PipelineConfig":
        """Rebuild a config from :meth:`to_dict` output (e.g. JSON).

        Missing sections/options fall back to their defaults; unknown
        names raise :class:`~repro.exceptions.ConfigurationError` with a
        close-match suggestion.
        """
        if not isinstance(mapping, Mapping):
            raise ConfigurationError(
                f"config must be a mapping, got {type(mapping).__name__}"
            )
        known = {name for name, _ in cls._SECTIONS} | {"dtype"}
        for key in mapping:
            if key not in known:
                raise ConfigurationError(
                    f"unknown config section {key!r}{closest(key, known)}; "
                    f"expected: {', '.join(sorted(known))}"
                )
        dtype = mapping.get("dtype", "float64")
        if not isinstance(dtype, str):
            raise ConfigurationError(
                f"dtype must be a string, got {type(dtype).__name__}"
            )
        return cls(
            dtype=dtype,
            **{
                name: _section_from_mapping(
                    section_cls, mapping.get(name, {}), name
                )
                for name, section_cls in cls._SECTIONS
            },
        )

    @staticmethod
    def paper_defaults() -> "PipelineConfig":
        """The exact default parameterization of Sec. VI-A2."""
        return PipelineConfig()

    @staticmethod
    def small(
        num_clusters: int = 3,
        budget: float = 0.3,
        max_horizon: int = 5,
        initial_collection: int = 50,
        retrain_interval: int = 50,
        dtype: str = "float64",
    ) -> "PipelineConfig":
        """A scaled-down configuration suitable for tests and CI benches."""
        return PipelineConfig(
            transmission=TransmissionConfig(budget=budget),
            clustering=ClusteringConfig(num_clusters=num_clusters, seed=0),
            forecasting=ForecastingConfig(
                max_horizon=max_horizon,
                initial_collection=initial_collection,
                retrain_interval=retrain_interval,
                seed=0,
            ),
            dtype=dtype,
        )
