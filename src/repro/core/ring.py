"""Preallocated ring buffers for bounded per-slot history windows.

The online pipeline only ever looks back ``M' + 1`` slots for membership
forecasting and offset estimation.  A :class:`SlotRing` keeps that
window in one preallocated ``(maxlen, …)`` array instead of a deque of
per-slot array objects: appends are a single row copy into recycled
storage (no per-slot allocation, no object churn), and the window reads
back in order as zero-copy row views.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.exceptions import ConfigurationError, DataError


class SlotRing:
    """Fixed-capacity ring of the last ``maxlen`` per-slot arrays.

    Storage is allocated once, on the first append (when the slot shape
    and dtype become known), and rows are recycled thereafter.
    Iteration yields the retained slots oldest → newest, as views into
    the buffer — the drop-in contract of the ``deque(maxlen=…)`` it
    replaces.

    Args:
        maxlen: Window size (slots retained), >= 1.
    """

    __slots__ = ("maxlen", "_buffer", "_length", "_cursor")

    def __init__(self, maxlen: int) -> None:
        if maxlen < 1:
            raise ConfigurationError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = int(maxlen)
        self._buffer: Optional[np.ndarray] = None
        self._length = 0
        self._cursor = 0

    def append(self, value: np.ndarray) -> None:
        """Copy one slot's array into the ring (evicting the oldest)."""
        # repro: noqa DT-001(ring adopts the caller's dtype by design)
        arr = np.asarray(value)
        if self._buffer is None:
            self._buffer = np.empty(
                (self.maxlen,) + arr.shape, dtype=arr.dtype
            )
        elif arr.shape != self._buffer.shape[1:]:
            raise DataError(
                f"slot shape {arr.shape} does not match the ring's "
                f"{self._buffer.shape[1:]}"
            )
        self._buffer[self._cursor] = arr
        self._cursor = (self._cursor + 1) % self.maxlen
        if self._length < self.maxlen:
            self._length += 1

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[np.ndarray]:
        """Retained slots oldest → newest (zero-copy row views)."""
        if self._buffer is None:
            return
        start = (self._cursor - self._length) % self.maxlen
        for k in range(self._length):
            yield self._buffer[(start + k) % self.maxlen]

    def __getitem__(self, index: int) -> np.ndarray:
        """The ``index``-th retained slot (0 oldest, -1 newest)."""
        if not -self._length <= index < self._length:
            raise IndexError(index)
        if index < 0:
            index += self._length
        start = (self._cursor - self._length) % self.maxlen
        return self._buffer[(start + index) % self.maxlen]

    def ordered(self) -> np.ndarray:
        """The window stacked oldest → newest, shape ``(len, …)`` (copy)."""
        if self._buffer is None:
            raise DataError("empty ring has no window")
        start = (self._cursor - self._length) % self.maxlen
        index = (start + np.arange(self._length)) % self.maxlen
        return self._buffer[index]

    def clear(self) -> None:
        """Forget all retained slots (storage stays allocated)."""
        self._length = 0
        self._cursor = 0

    def reindex(self, index_map: np.ndarray, fill) -> None:
        """Remap axis 0 of every retained slot (fleet churn support).

        Each retained slot array is rebuilt as
        ``new[i] = old[index_map[i]]`` where ``index_map[i] >= 0``, and
        ``new[i] = fill`` for ``index_map[i] == -1`` (a node with no
        history — a fresh join).  The window length and order are
        unchanged; the buffer is reallocated to the new slot shape.

        Args:
            index_map: int array, one entry per *new* row: the old row
                index it descends from, or ``-1``.
            fill: Backfill value for ``-1`` rows (scalar, broadcast
                over the slot's trailing dimensions).
        """
        index_map = np.asarray(index_map, dtype=np.int64).ravel()
        if self._buffer is None or self._length == 0:
            # Nothing retained: drop the allocation so the next append
            # defines the new slot shape.
            self._buffer = None
            self.clear()
            return
        window = self.ordered()
        fresh = index_map < 0
        remapped = window[:, np.where(fresh, 0, index_map)]
        remapped[:, fresh] = fill
        self._buffer = None
        self.clear()
        for row in remapped:
            self.append(row)

    # -- checkpoint state contract --------------------------------------

    def get_state(self) -> dict:
        """Serializable ring state: the retained window, oldest first.

        The cursor position is not part of the contract — only the
        window's contents and order are observable, so restoring via
        re-appends is bit-identical to the original ring.
        """
        return {
            "maxlen": self.maxlen,
            "window": self.ordered() if self._length else None,
        }

    def set_state(self, state: dict, *, adopt: bool = False) -> None:
        """Restore a window captured by :meth:`get_state`.

        Args:
            adopt: Adopt a *full* window array as the ring's buffer
                without copying (the zero-copy checkpoint-resume path —
                the window rows become the recycled storage, cursor at
                the oldest row).  Partial windows still copy: the buffer
                must be ``maxlen`` rows.  Default False: rows are
                re-appended (copied) and the state stays independent.
        """
        if int(state["maxlen"]) != self.maxlen:
            raise DataError(
                f"ring maxlen {self.maxlen} cannot load a window of "
                f"maxlen {state['maxlen']}"
            )
        self._buffer = None
        self.clear()
        window = state["window"]
        if window is None:
            return
        # repro: noqa DT-001(keeps the checkpoint array's dtype)
        window = np.asarray(window)
        if adopt and window.shape[0] == self.maxlen:
            # ordered() returned oldest→newest, so cursor 0 with a full
            # length reproduces the same logical order over this buffer.
            self._buffer = window
            self._length = self.maxlen
            self._cursor = 0
            return
        for row in window:
            self.append(row)


__all__ = ["SlotRing"]
