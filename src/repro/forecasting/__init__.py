"""Temporal forecasting stage (Sec. V-C): models, membership, offsets."""

from repro.forecasting.arima import (
    ArimaModel,
    ArimaOrder,
    AutoArima,
    candidate_orders,
    grid_search,
)
from repro.forecasting.base import Forecaster
from repro.forecasting.exponential import (
    HoltLinear,
    HoltWinters,
    SimpleExponentialSmoothing,
)
from repro.forecasting.yule_walker import YuleWalkerAR, fit_yule_walker
from repro.forecasting.lstm import LstmForecaster, StackedLSTMNetwork
from repro.forecasting.membership import forecast_membership, membership_stability
from repro.forecasting.offsets import alpha_clip, estimate_offsets
from repro.forecasting.sample_hold import MeanForecaster, SampleHoldForecaster
from repro.forecasting.stattools import (
    acf,
    aicc,
    difference,
    differencing_polynomial,
    ljung_box,
    pacf,
    undifference_forecasts,
)

__all__ = [
    "ArimaModel",
    "ArimaOrder",
    "AutoArima",
    "candidate_orders",
    "grid_search",
    "Forecaster",
    "HoltLinear",
    "HoltWinters",
    "SimpleExponentialSmoothing",
    "YuleWalkerAR",
    "fit_yule_walker",
    "LstmForecaster",
    "StackedLSTMNetwork",
    "forecast_membership",
    "membership_stability",
    "alpha_clip",
    "estimate_offsets",
    "MeanForecaster",
    "SampleHoldForecaster",
    "acf",
    "aicc",
    "difference",
    "differencing_polynomial",
    "ljung_box",
    "pacf",
    "undifference_forecasts",
]
