"""Temporal forecasting stage (Sec. V-C): models, membership, offsets."""

from repro.forecasting.arima import (
    ArimaModel,
    ArimaOrder,
    AutoArima,
    candidate_orders,
    grid_search,
)
from repro.forecasting.base import Forecaster
from repro.forecasting.bank import (
    BankForecastError,
    ExponentialBank,
    ForecasterBank,
    ForecasterFactory,
    MeanBank,
    ObjectBank,
    SampleHoldBank,
    YuleWalkerBank,
    default_forecaster_factory,
    resolve_bank,
    resolved_bank_name,
)
from repro.forecasting.exponential import (
    HoltLinear,
    HoltWinters,
    SimpleExponentialSmoothing,
    ewma_run,
    fit_ses_alpha,
)
from repro.forecasting.yule_walker import (
    YuleWalkerAR,
    ar_forecast_batch,
    fit_yule_walker,
    fit_yule_walker_batch,
)
from repro.forecasting.lstm import LstmForecaster, StackedLSTMNetwork
from repro.forecasting.membership import forecast_membership, membership_stability
from repro.forecasting.offsets import alpha_clip, estimate_offsets
from repro.forecasting.sample_hold import (
    MeanForecaster,
    SampleHoldForecaster,
    hold_forecast,
    running_mean,
)
from repro.forecasting.stattools import (
    acf,
    aicc,
    difference,
    differencing_polynomial,
    ljung_box,
    pacf,
    undifference_forecasts,
)

__all__ = [
    "ArimaModel",
    "ArimaOrder",
    "AutoArima",
    "candidate_orders",
    "grid_search",
    "Forecaster",
    "BankForecastError",
    "ExponentialBank",
    "ForecasterBank",
    "ForecasterFactory",
    "MeanBank",
    "ObjectBank",
    "SampleHoldBank",
    "YuleWalkerBank",
    "default_forecaster_factory",
    "resolve_bank",
    "resolved_bank_name",
    "HoltLinear",
    "HoltWinters",
    "SimpleExponentialSmoothing",
    "ewma_run",
    "fit_ses_alpha",
    "hold_forecast",
    "running_mean",
    "YuleWalkerAR",
    "ar_forecast_batch",
    "fit_yule_walker",
    "fit_yule_walker_batch",
    "LstmForecaster",
    "StackedLSTMNetwork",
    "forecast_membership",
    "membership_stability",
    "alpha_clip",
    "estimate_offsets",
    "MeanForecaster",
    "SampleHoldForecaster",
    "acf",
    "aicc",
    "difference",
    "differencing_polynomial",
    "ljung_box",
    "pacf",
    "undifference_forecasts",
]
