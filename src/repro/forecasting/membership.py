"""Forecasting future cluster membership (Sec. V-C).

At time ``t`` the paper predicts that node ``i`` will belong, at any
future step ``t + h``, to the cluster it occupied most frequently during
the look-back interval ``[t − M', t]`` (ties broken toward the most
recent occupancy).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataError


def forecast_membership(
    label_history: Sequence[np.ndarray], lookback: int
) -> np.ndarray:
    """Majority-vote membership forecast.

    Args:
        label_history: Per-slot label arrays, oldest first; each has shape
            ``(N,)``.  Only the last ``lookback + 1`` entries (the paper's
            ``[t − M', t]`` window) are used.
        lookback: The look-back ``M'``.

    Returns:
        Array of shape ``(N,)``: the forecasted cluster of each node.
    """
    if lookback < 0:
        raise ConfigurationError(f"lookback must be >= 0, got {lookback}")
    if not label_history:
        raise DataError("label_history is empty")
    window = [np.asarray(l, dtype=int) for l in label_history[-(lookback + 1):]]
    num_nodes = window[0].shape[0]
    if any(l.shape != (num_nodes,) for l in window):
        raise DataError("label arrays in history have inconsistent shapes")
    stacked = np.stack(window)  # (W, N)
    num_steps = stacked.shape[0]
    num_clusters = int(stacked.max()) + 1
    # One-hot occupancy (W, N, K): counts and recency in one pass, no
    # per-node Python loop.
    occupancy = stacked[:, :, np.newaxis] == np.arange(num_clusters)
    counts = occupancy.sum(axis=0)  # (N, K)
    best = counts.max(axis=1, keepdims=True)
    # Tie-break toward the most recently occupied cluster among the
    # maximal ones, which keeps the forecast stable under oscillation:
    # every candidate cluster appears somewhere in the window, so the
    # candidate with the largest last-occupied slot index wins.
    last_seen = np.where(
        occupancy, np.arange(num_steps)[:, np.newaxis, np.newaxis], -1
    ).max(axis=0)  # (N, K)
    ranked = np.where(counts == best, last_seen, -1)
    return ranked.argmax(axis=1)


def membership_stability(label_history: Sequence[np.ndarray]) -> float:
    """Fraction of nodes whose cluster did not change across the window.

    A diagnostic used in tests and ablations: values near 1 mean cluster
    identities persist, which is when centroid forecasting is meaningful.
    """
    if len(label_history) < 2:
        return 1.0
    stacked = np.stack([np.asarray(l, dtype=int) for l in label_history])
    stable = np.all(stacked == stacked[0], axis=0)
    return float(np.mean(stable))
