"""Abstract forecaster interface (Sec. V-C).

A forecaster is trained on the time series of one cluster's centroids and
produces multi-step-ahead forecasts.  Between (periodic) retrainings, new
observations are fed in with :meth:`update` so forecasts always condition
on the latest data — the paper calls this updating the model's transient
state.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import DataError, NotFittedError


class Forecaster(abc.ABC):
    """One-dimensional time-series forecaster with online updates."""

    def __init__(self) -> None:
        self._history: list = []
        self._fitted = False

    @property
    def history(self) -> np.ndarray:
        """All observations seen so far (training data + updates)."""
        return np.asarray(self._history, dtype=float)

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, series: Sequence[float]) -> "Forecaster":
        """(Re)train the model on a full history.

        Args:
            series: The centroid time series observed so far.
        """
        values = np.asarray(list(series), dtype=float)
        if values.ndim != 1:
            raise DataError(f"series must be 1-D, got shape {values.shape}")
        if values.size == 0:
            raise DataError("series is empty")
        if not np.isfinite(values).all():
            raise DataError("series contains NaN or infinite values")
        self._history = values.tolist()
        self._fit(values)
        self._fitted = True
        return self

    def update(self, value: float) -> None:
        """Append one new observation without refitting parameters."""
        if not np.isfinite(value):
            raise DataError(f"observation must be finite, got {value}")
        self._history.append(float(value))
        self._update(float(value))

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` steps ahead of the latest observation.

        Returns:
            Array of shape ``(horizon,)`` with forecasts for steps
            ``t+1 .. t+horizon``.
        """
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__}.forecast called before fit"
            )
        if horizon < 1:
            raise DataError(f"horizon must be >= 1, got {horizon}")
        return self._forecast(horizon)

    @abc.abstractmethod
    def _fit(self, series: np.ndarray) -> None:
        """Model-specific training."""

    def _update(self, value: float) -> None:
        """Model-specific state update; default is no-op (history suffices)."""

    @abc.abstractmethod
    def _forecast(self, horizon: int) -> np.ndarray:
        """Model-specific forecasting."""

    # ------------------------------------------------------------------
    # Checkpoint state contract
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Serializable model state (the checkpoint protocol).

        The contract: :meth:`get_state` returns a dict of JSON-able
        scalars, nested dicts/lists and numpy arrays; feeding it to
        :meth:`set_state` on a *freshly constructed* instance of the
        same class (same constructor arguments) must make every future
        ``update``/``forecast`` bit-identical to a model that never
        stopped.  The base implementation captures the observation
        history and the fitted flag; subclasses contribute their fitted
        parameters and transient state via :meth:`_state` /
        :meth:`_load_state`.  Custom forecasters run behind an
        :class:`~repro.forecasting.bank.ObjectBank` must follow this
        protocol to be checkpointable.
        """
        return {
            "history": np.asarray(self._history, dtype=float),
            "fitted": self._fitted,
            **self._state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`get_state`."""
        self._history = [
            float(v) for v in np.asarray(state["history"], dtype=float)
        ]
        self._fitted = bool(state["fitted"])
        self._load_state(state)

    def _state(self) -> dict:
        """Fitted parameters / transient state (subclass hook)."""
        return {}

    def _load_state(self, state: dict) -> None:
        """Restore :meth:`_state` output (subclass hook)."""
