"""Sample-and-hold forecaster (Sec. VI-D1).

The simplest possible predictor: the forecast for every future step is
the most recent observation.  The paper uses it both as a baseline and as
the default forecaster for parameter studies (Tables III, Figs. 10–11),
noting it is cheap enough to run per node (K = N).

The hold/mean computations are exposed as the batched kernels
:func:`hold_forecast` and :func:`running_mean`, shared between the
scalar classes and the banks in :mod:`repro.forecasting.bank`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster


def hold_forecast(last: np.ndarray, horizon: int) -> np.ndarray:
    """Repeat the latest value of ``S`` series over the horizon.

    Args:
        last: Latest observation per series, shape ``(S,)``.
        horizon: Steps ahead H >= 1.

    Returns:
        Forecasts, shape ``(H, S)``.
    """
    values = np.asarray(last, dtype=float)
    if values.ndim != 1:
        raise DataError(f"last must be (S,), got shape {values.shape}")
    return np.tile(values, (horizon, 1))


def running_mean(history: np.ndarray) -> np.ndarray:
    """Mean over time of ``S`` series, shape ``(T, S)`` → ``(S,)``.

    The contiguous per-series layout keeps each column's reduction
    bit-identical to a 1-D ``np.mean`` of that column.
    """
    x = np.asarray(history, dtype=float)
    if x.ndim != 2:
        raise DataError(f"history batch must be (T, S), got shape {x.shape}")
    if x.shape[0] == 0:
        raise DataError("history is empty")
    return np.ascontiguousarray(x.T).mean(axis=1)


class SampleHoldForecaster(Forecaster):
    """Predicts every horizon with the latest observed value."""

    def _fit(self, series: np.ndarray) -> None:
        # No parameters: the history kept by the base class is the model.
        pass

    def _forecast(self, horizon: int) -> np.ndarray:
        last = self.history[-1]
        return hold_forecast(np.asarray([float(last)]), horizon)[:, 0]


class MeanForecaster(Forecaster):
    """Predicts every horizon with the long-term mean of the history.

    This is the offline "long-term statistics" mechanism whose error the
    paper upper-bounds by the standard deviation (Sec. VI-D1).
    """

    def __init__(self) -> None:
        super().__init__()
        self._mean = 0.0

    def _fit(self, series: np.ndarray) -> None:
        self._mean = float(running_mean(series[:, np.newaxis])[0])

    def _update(self, value: float) -> None:
        # Keep the running mean consistent with the full history.
        self._mean = float(running_mean(self.history[:, np.newaxis])[0])

    def _forecast(self, horizon: int) -> np.ndarray:
        return hold_forecast(np.asarray([self._mean]), horizon)[:, 0]

    def _state(self) -> dict:
        return {"mean": self._mean}

    def _load_state(self, state: dict) -> None:
        self._mean = float(state["mean"])


@register_forecaster("sample_hold")
def _build_sample_hold(config, cluster: int, group: int) -> SampleHoldForecaster:
    return SampleHoldForecaster()


@register_forecaster("mean")
def _build_mean(config, cluster: int, group: int) -> MeanForecaster:
    return MeanForecaster()
