"""Sample-and-hold forecaster (Sec. VI-D1).

The simplest possible predictor: the forecast for every future step is
the most recent observation.  The paper uses it both as a baseline and as
the default forecaster for parameter studies (Tables III, Figs. 10–11),
noting it is cheap enough to run per node (K = N)."""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster


class SampleHoldForecaster(Forecaster):
    """Predicts every horizon with the latest observed value."""

    def _fit(self, series: np.ndarray) -> None:
        # No parameters: the history kept by the base class is the model.
        pass

    def _forecast(self, horizon: int) -> np.ndarray:
        last = self.history[-1]
        return np.full(horizon, float(last))


class MeanForecaster(Forecaster):
    """Predicts every horizon with the long-term mean of the history.

    This is the offline "long-term statistics" mechanism whose error the
    paper upper-bounds by the standard deviation (Sec. VI-D1).
    """

    def __init__(self) -> None:
        super().__init__()
        self._mean = 0.0

    def _fit(self, series: np.ndarray) -> None:
        self._mean = float(series.mean())

    def _update(self, value: float) -> None:
        # Keep the running mean consistent with the full history.
        self._mean = float(np.mean(self._history))

    def _forecast(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._mean)


@register_forecaster("sample_hold")
def _build_sample_hold(config, cluster: int, group: int) -> SampleHoldForecaster:
    return SampleHoldForecaster()


@register_forecaster("mean")
def _build_mean(config, cluster: int, group: int) -> MeanForecaster:
    return MeanForecaster()
