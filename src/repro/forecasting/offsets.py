"""Per-node offsets with α-clipping (Eq. 12, Sec. V-C).

The forecast for node ``i`` is the forecasted centroid of its predicted
cluster plus an offset

    ŝ_{i,t+h} = (1/(M'+1)) Σ_{m=0..M'} α_{t−m} · (z_{i,t−m} − c_{j,t−m})

where the scaling coefficient ``α ∈ (0, 1]`` is the largest value keeping
``c_j + α·(z_i − c_j)`` closest to centroid ``c_j`` among all centroids
(α = 1 when ``z_i`` already belongs to cluster ``j``).  The clipping
prevents the reconstructed value from crossing into a different cluster
than the one whose centroid is being forecast.

The α computation is fully vectorized: all boundary crossings for every
node (and, in :func:`estimate_offsets`, every history slot) are evaluated
through one ``(..., N, K, d)`` broadcast instead of per-node Python-level
dot products, which is what makes fleet-scale (N ≈ 10³⁺) per-slot
forecasting feasible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataError


def _validate_clusters(idx: np.ndarray, num_clusters: int) -> None:
    if idx.size and (idx.min() < 0 or idx.max() >= num_clusters):
        bad = int(idx[(idx < 0) | (idx >= num_clusters)][0])
        raise ConfigurationError(
            f"cluster {bad} outside [0, {num_clusters})"
        )


def alpha_clip_batch(
    values: np.ndarray, centroids: np.ndarray, clusters: np.ndarray
) -> np.ndarray:
    """Vectorized α-clipping for many nodes against one centroid set.

    For every node ``i`` this computes the largest ``α ∈ (0, 1]`` keeping
    ``c_j + α(z_i − c_j)`` closest to centroid ``j = clusters[i]`` — the
    same rule as :func:`alpha_clip`, evaluated for all nodes through a
    single ``(N, K, d)`` broadcast.

    Args:
        values: Stored measurements ``z``, shape ``(N, d)`` or ``(N,)``.
        centroids: All centroids, shape ``(K, d)`` or ``(K,)``.
        clusters: Target cluster index per node, shape ``(N,)``.

    Returns:
        α per node, shape ``(N,)``.
    """
    z = np.asarray(values, dtype=float)
    if z.ndim == 1:
        z = z[:, np.newaxis]
    cents = np.asarray(centroids, dtype=float)
    if cents.ndim == 1:
        cents = cents[:, np.newaxis]
    idx = np.asarray(clusters, dtype=int)
    _validate_clusters(idx, cents.shape[0])
    own = cents[idx]  # (N, d)
    direction = z - own  # (N, d)
    alphas = _clipped_alphas(direction[np.newaxis], cents, own[np.newaxis])
    return alphas[0]


def _clipped_alphas(
    direction: np.ndarray, centroids: np.ndarray, own: np.ndarray
) -> np.ndarray:
    """Boundary-crossing α's for a ``(..., N, d)`` stack of directions.

    ``direction`` is ``z − c_j`` per node, ``own`` the matching centroid
    ``c_j``, and ``centroids`` either ``(K, d)`` (shared across the stack)
    or ``(..., K, d)`` (one centroid set per leading index).
    """
    # Rival displacement u = c_k − c_j for every (node, rival) pair.
    rivals = np.expand_dims(centroids, -3) - np.expand_dims(own, -2)
    # (..., N, K): projections of each node's direction onto each rival.
    projection = (np.expand_dims(direction, -2) * rivals).sum(axis=-1)
    rival_norm_sq = (rivals * rivals).sum(axis=-1)
    # Boundary: ||α·direction||² == ||α·direction − u||²
    #        ⇔ α == ||u||² / (2 · direction·u), relevant only when the
    # direction actually moves toward the rival (projection > 0); the own
    # cluster has u = 0 and is excluded the same way.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        boundary = rival_norm_sq / (2.0 * projection)
    boundary = np.where(projection > 0.0, boundary, np.inf)
    alphas = np.minimum(1.0, boundary.min(axis=-1))
    alphas = np.maximum(alphas, 1e-12)
    norm_sq = (direction * direction).sum(axis=-1)
    return np.where(norm_sq == 0.0, 1.0, alphas)


def alpha_clip(
    value: np.ndarray, centroids: np.ndarray, cluster: int
) -> float:
    """Largest α ∈ (0, 1] keeping ``c_j + α(z − c_j)`` in cluster ``j``.

    Args:
        value: The node's stored measurement ``z`` (d-vector or scalar).
        centroids: All centroids, shape ``(K, d)`` or ``(K,)``.
        cluster: Target cluster index ``j``.

    Returns:
        α = 1 when the point already lies in cluster ``j`` (or exactly on
        its centroid); otherwise the boundary-crossing α, floored at a
        small positive value so the offset never flips sign.
    """
    z = np.atleast_1d(np.asarray(value, dtype=float))
    return float(
        alpha_clip_batch(z[np.newaxis, :], centroids, np.asarray([cluster]))[0]
    )


def estimate_offsets(
    stored_history: Sequence[np.ndarray],
    centroid_history: Sequence[np.ndarray],
    memberships: np.ndarray,
    lookback: int,
    *,
    clip: bool = True,
) -> np.ndarray:
    """Compute the per-node offsets ``ŝ`` of Eq. 12.

    All boundary α's over the look-back window are evaluated through one
    ``(window, N, K, d)`` broadcast — no Python-level per-node loops.

    Args:
        stored_history: Per-slot stored measurements ``z``, oldest first;
            each of shape ``(N, d)`` (or ``(N,)``).  Only the final
            ``lookback + 1`` slots are used.
        centroid_history: Per-slot centroid arrays ``(K, d)`` aligned with
            ``stored_history``.
        memberships: Shape ``(N,)`` — the forecasted cluster ``j`` per
            node (from :func:`~repro.forecasting.membership.forecast_membership`).
        lookback: The look-back ``M'``.
        clip: Apply the α-clipping of Eq. 12 (the paper's rule).  When
            False the raw deviation ``z − c`` is averaged instead — used
            by the clipping ablation.

    Returns:
        Offsets of shape ``(N, d)``.
    """
    if lookback < 0:
        raise ConfigurationError(f"lookback must be >= 0, got {lookback}")
    if len(stored_history) != len(centroid_history):
        raise DataError(
            "stored_history and centroid_history lengths differ: "
            f"{len(stored_history)} vs {len(centroid_history)}"
        )
    if not stored_history:
        raise DataError("histories are empty")
    window = min(lookback + 1, len(stored_history))
    memberships = np.asarray(memberships, dtype=int)
    first = np.asarray(stored_history[-window], dtype=float)
    num_nodes = first.shape[0]
    if memberships.shape != (num_nodes,):
        raise DataError(
            f"memberships must have shape ({num_nodes},), got {memberships.shape}"
        )
    stored = np.stack([
        np.asarray(s, dtype=float).reshape(num_nodes, -1)
        for s in stored_history[-window:]
    ])  # (window, N, d)
    dim = stored.shape[2]
    cents = np.stack([
        np.asarray(c, dtype=float).reshape(-1, dim)
        for c in centroid_history[-window:]
    ])  # (window, K, d)
    _validate_clusters(memberships, cents.shape[1])
    own = cents[:, memberships, :]  # (window, N, d)
    diff = stored - own  # (window, N, d)
    if clip:
        alphas = _clipped_alphas(diff, cents, own)  # (window, N)
    else:
        alphas = np.ones((window, num_nodes))
    # Accumulate slot by slot (oldest first) so the floating-point
    # summation order matches the streaming definition exactly.
    offsets = np.zeros((num_nodes, dim))
    for m in range(window):
        offsets += alphas[m][:, np.newaxis] * diff[m]
    offsets /= window
    return offsets
