"""Per-node offsets with α-clipping (Eq. 12, Sec. V-C).

The forecast for node ``i`` is the forecasted centroid of its predicted
cluster plus an offset

    ŝ_{i,t+h} = (1/(M'+1)) Σ_{m=0..M'} α_{t−m} · (z_{i,t−m} − c_{j,t−m})

where the scaling coefficient ``α ∈ (0, 1]`` is the largest value keeping
``c_j + α·(z_i − c_j)`` closest to centroid ``c_j`` among all centroids
(α = 1 when ``z_i`` already belongs to cluster ``j``).  The clipping
prevents the reconstructed value from crossing into a different cluster
than the one whose centroid is being forecast.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataError


def alpha_clip(
    value: np.ndarray, centroids: np.ndarray, cluster: int
) -> float:
    """Largest α ∈ (0, 1] keeping ``c_j + α(z − c_j)`` in cluster ``j``.

    Args:
        value: The node's stored measurement ``z`` (d-vector or scalar).
        centroids: All centroids, shape ``(K, d)`` or ``(K,)``.
        cluster: Target cluster index ``j``.

    Returns:
        α = 1 when the point already lies in cluster ``j`` (or exactly on
        its centroid); otherwise the boundary-crossing α, floored at a
        small positive value so the offset never flips sign.
    """
    z = np.atleast_1d(np.asarray(value, dtype=float))
    cents = np.asarray(centroids, dtype=float)
    if cents.ndim == 1:
        cents = cents[:, np.newaxis]
    num_clusters = cents.shape[0]
    if cluster < 0 or cluster >= num_clusters:
        raise ConfigurationError(
            f"cluster {cluster} outside [0, {num_clusters})"
        )
    direction = z - cents[cluster]
    norm_sq = float(np.dot(direction, direction))
    if norm_sq == 0.0:
        return 1.0
    alpha = 1.0
    for other in range(num_clusters):
        if other == cluster:
            continue
        u = cents[other] - cents[cluster]
        projection = float(np.dot(direction, u))
        if projection <= 0.0:
            continue  # moving along `direction` goes away from this rival
        # Boundary: ||α·direction||² == ||α·direction − u||²
        #        ⇔ α == ||u||² / (2 · direction·u)
        boundary = float(np.dot(u, u)) / (2.0 * projection)
        alpha = min(alpha, boundary)
    return float(max(alpha, 1e-12))


def estimate_offsets(
    stored_history: Sequence[np.ndarray],
    centroid_history: Sequence[np.ndarray],
    memberships: np.ndarray,
    lookback: int,
    *,
    clip: bool = True,
) -> np.ndarray:
    """Compute the per-node offsets ``ŝ`` of Eq. 12.

    Args:
        stored_history: Per-slot stored measurements ``z``, oldest first;
            each of shape ``(N, d)`` (or ``(N,)``).  Only the final
            ``lookback + 1`` slots are used.
        centroid_history: Per-slot centroid arrays ``(K, d)`` aligned with
            ``stored_history``.
        memberships: Shape ``(N,)`` — the forecasted cluster ``j`` per
            node (from :func:`~repro.forecasting.membership.forecast_membership`).
        lookback: The look-back ``M'``.
        clip: Apply the α-clipping of Eq. 12 (the paper's rule).  When
            False the raw deviation ``z − c`` is averaged instead — used
            by the clipping ablation.

    Returns:
        Offsets of shape ``(N, d)``.
    """
    if lookback < 0:
        raise ConfigurationError(f"lookback must be >= 0, got {lookback}")
    if len(stored_history) != len(centroid_history):
        raise DataError(
            "stored_history and centroid_history lengths differ: "
            f"{len(stored_history)} vs {len(centroid_history)}"
        )
    if not stored_history:
        raise DataError("histories are empty")
    window = min(lookback + 1, len(stored_history))
    memberships = np.asarray(memberships, dtype=int)
    first = np.asarray(stored_history[-window], dtype=float)
    num_nodes = first.shape[0]
    if memberships.shape != (num_nodes,):
        raise DataError(
            f"memberships must have shape ({num_nodes},), got {memberships.shape}"
        )
    stored = [
        np.asarray(s, dtype=float).reshape(num_nodes, -1)
        for s in stored_history[-window:]
    ]
    cents = [
        np.asarray(c, dtype=float).reshape(-1, stored[0].shape[1])
        for c in centroid_history[-window:]
    ]
    dim = stored[0].shape[1]
    offsets = np.zeros((num_nodes, dim))
    for m in range(window):
        z_slot = stored[m]
        c_slot = cents[m]
        for i in range(num_nodes):
            j = memberships[i]
            diff = z_slot[i] - c_slot[j]
            alpha = alpha_clip(z_slot[i], c_slot, j) if clip else 1.0
            offsets[i] += alpha * diff
    offsets /= window
    return offsets
