"""Exponential-smoothing forecasters (the paper's "etc." models).

Sec. V-C notes the per-cluster forecasting model "can include ARIMA,
LSTM, etc.".  This module adds the classical exponential-smoothing
family, which sits between sample-and-hold and ARIMA in cost:

* :class:`SimpleExponentialSmoothing` — level only.
* :class:`HoltLinear` — level + trend (damped optional).
* :class:`HoltWinters` — level + trend + additive seasonality, suitable
  for the diurnal structure of cluster workloads.

Smoothing parameters are fitted by minimizing the in-sample one-step
sum of squared errors with L-BFGS-B.

The EWMA level recurrence is exposed as the batched kernel
:func:`ewma_run` (and the fitted weight as :func:`fit_ses_alpha`),
shared between :class:`SimpleExponentialSmoothing` and the
:class:`~repro.forecasting.bank.ExponentialBank`, so a bank over
``S = K·d`` series is bit-identical to a loop of ``S`` scalar models.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from scipy import optimize

from repro.exceptions import ConfigurationError, DataError
from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster


def ewma_run(
    series: np.ndarray, alpha: Union[float, np.ndarray]
) -> np.ndarray:
    """Final EWMA level of ``S`` series run in lockstep.

    Iterates ``l_t = α·y_t + (1−α)·l_{t−1}`` from ``l_0 = y_0`` over
    every column at once; element-wise ops keep each column's
    arithmetic identical to a scalar run of that column.

    Args:
        series: Observations, shape ``(T, S)`` — one series per column.
        alpha: Smoothing weight(s): a scalar or shape ``(S,)``.

    Returns:
        The level after the last observation, shape ``(S,)``.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 2:
        raise DataError(f"series batch must be (T, S), got shape {x.shape}")
    if x.shape[0] == 0:
        raise DataError("series is empty")
    level = x[0].copy()
    for t in range(1, x.shape[0]):
        level = alpha * x[t] + (1.0 - alpha) * level
    return level


def fit_ses_alpha(series: np.ndarray) -> float:
    """The SES weight minimizing the in-sample one-step SSE (1-D input).

    The bounded scalar optimization is inherently per-series (each
    series has its own objective landscape), so banks call this once
    per column; the level recurrence itself is batched in
    :func:`ewma_run`.
    """
    result = optimize.minimize_scalar(
        lambda a: SimpleExponentialSmoothing._sse(a, series),
        bounds=(1e-4, 1.0),
        method="bounded",
    )
    return float(result.x)


class SimpleExponentialSmoothing(Forecaster):
    """Level-only exponential smoothing: ``l_t = α·y_t + (1−α)·l_{t−1}``.

    Args:
        alpha: Fixed smoothing weight in (0, 1]; fitted from data when
            None.
    """

    def __init__(self, alpha: Optional[float] = None) -> None:
        super().__init__()
        if alpha is not None and not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self._fixed_alpha = alpha
        self.alpha = alpha if alpha is not None else 0.5
        self._level = 0.0

    @staticmethod
    def _sse(alpha: float, series: np.ndarray) -> float:
        level = series[0]
        sse = 0.0
        for value in series[1:]:
            sse += (value - level) ** 2
            level = alpha * value + (1.0 - alpha) * level
        return sse

    def _fit(self, series: np.ndarray) -> None:
        if self._fixed_alpha is None and series.size >= 3:
            self.alpha = fit_ses_alpha(series)
        self._level = ewma_run(series[:, np.newaxis], self.alpha)[0]

    def _update(self, value: float) -> None:
        if self.is_fitted:
            self._level = self.alpha * value + (1.0 - self.alpha) * self._level

    def _forecast(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._level)

    def _state(self) -> dict:
        return {"alpha": float(self.alpha), "level": float(self._level)}

    def _load_state(self, state: dict) -> None:
        self.alpha = float(state["alpha"])
        self._level = float(state["level"])


class HoltLinear(Forecaster):
    """Holt's linear method: level + (optionally damped) trend.

    Args:
        damping: Trend damping φ in (0, 1]; 1 means undamped.
    """

    def __init__(self, damping: float = 0.98) -> None:
        super().__init__()
        if not 0.0 < damping <= 1.0:
            raise ConfigurationError(f"damping must be in (0, 1], got {damping}")
        self.damping = damping
        self.alpha = 0.5
        self.beta = 0.1
        self._level = 0.0
        self._trend = 0.0

    def _run(
        self, params: Tuple[float, float], series: np.ndarray
    ) -> Tuple[float, float, float]:
        alpha, beta = params
        phi = self.damping
        level = series[0]
        trend = series[1] - series[0] if series.size > 1 else 0.0
        sse = 0.0
        for value in series[1:]:
            prediction = level + phi * trend
            sse += (value - prediction) ** 2
            new_level = alpha * value + (1.0 - alpha) * prediction
            trend = beta * (new_level - level) + (1.0 - beta) * phi * trend
            level = new_level
        return sse, level, trend

    def _fit(self, series: np.ndarray) -> None:
        if series.size < 2:
            raise DataError("HoltLinear needs at least 2 observations")
        result = optimize.minimize(
            lambda p: self._run((p[0], p[1]), series)[0],
            np.array([0.5, 0.1]),
            method="L-BFGS-B",
            bounds=[(1e-4, 1.0), (1e-4, 1.0)],
        )
        self.alpha, self.beta = (float(result.x[0]), float(result.x[1]))
        _, self._level, self._trend = self._run(
            (self.alpha, self.beta), series
        )

    def _update(self, value: float) -> None:
        if not self.is_fitted:
            return
        phi = self.damping
        prediction = self._level + phi * self._trend
        new_level = self.alpha * value + (1.0 - self.alpha) * prediction
        self._trend = (
            self.beta * (new_level - self._level)
            + (1.0 - self.beta) * phi * self._trend
        )
        self._level = new_level

    def _forecast(self, horizon: int) -> np.ndarray:
        phi = self.damping
        # Damped-trend forecast: l + (φ + φ² + ... + φ^h) b
        weights = np.cumsum(phi ** np.arange(1, horizon + 1))
        return self._level + weights * self._trend

    def _state(self) -> dict:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "level": float(self._level),
            "trend": float(self._trend),
        }

    def _load_state(self, state: dict) -> None:
        self.alpha = float(state["alpha"])
        self.beta = float(state["beta"])
        self._level = float(state["level"])
        self._trend = float(state["trend"])


class HoltWinters(Forecaster):
    """Additive Holt–Winters: level + trend + seasonal component.

    Args:
        period: Season length (e.g. slots per day); must be >= 2.
        damping: Trend damping φ in (0, 1].
    """

    def __init__(self, period: int, damping: float = 0.98) -> None:
        super().__init__()
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period}")
        if not 0.0 < damping <= 1.0:
            raise ConfigurationError(f"damping must be in (0, 1], got {damping}")
        self.period = period
        self.damping = damping
        self.alpha = 0.3
        self.beta = 0.05
        self.gamma_s = 0.1
        self._level = 0.0
        self._trend = 0.0
        self._seasonal: Optional[np.ndarray] = None
        self._season_index = 0

    def _initial_state(
        self, series: np.ndarray
    ) -> Tuple[float, float, np.ndarray]:
        m = self.period
        first = series[:m]
        level = float(first.mean())
        if series.size >= 2 * m:
            second = series[m : 2 * m]
            trend = float((second.mean() - first.mean()) / m)
        else:
            trend = 0.0
        seasonal = first - level
        return level, trend, seasonal

    def _run(
        self, params: Tuple[float, float, float], series: np.ndarray
    ) -> Tuple[float, float, float, np.ndarray, int]:
        alpha, beta, gamma = params
        phi = self.damping
        m = self.period
        level, trend, seasonal = self._initial_state(series)
        seasonal = seasonal.copy()
        sse = 0.0
        for t in range(m, series.size):
            s_idx = t % m
            prediction = level + phi * trend + seasonal[s_idx]
            error = series[t] - prediction
            sse += error**2
            new_level = alpha * (series[t] - seasonal[s_idx]) + (
                1.0 - alpha
            ) * (level + phi * trend)
            trend = beta * (new_level - level) + (1.0 - beta) * phi * trend
            seasonal[s_idx] = gamma * (series[t] - new_level) + (
                1.0 - gamma
            ) * seasonal[s_idx]
            level = new_level
        return sse, level, trend, seasonal, series.size % m

    def _fit(self, series: np.ndarray) -> None:
        if series.size < 2 * self.period:
            raise DataError(
                f"HoltWinters(period={self.period}) needs at least "
                f"{2 * self.period} observations, got {series.size}"
            )
        result = optimize.minimize(
            lambda p: self._run((p[0], p[1], p[2]), series)[0],
            np.array([0.3, 0.05, 0.1]),
            method="L-BFGS-B",
            bounds=[(1e-4, 1.0)] * 3,
        )
        self.alpha, self.beta, self.gamma_s = (float(x) for x in result.x)
        (_, self._level, self._trend,
         self._seasonal, self._season_index) = self._run(
            (self.alpha, self.beta, self.gamma_s), series
        )

    def _update(self, value: float) -> None:
        if not self.is_fitted or self._seasonal is None:
            return
        phi = self.damping
        s_idx = self._season_index
        new_level = self.alpha * (value - self._seasonal[s_idx]) + (
            1.0 - self.alpha
        ) * (self._level + phi * self._trend)
        self._trend = (
            self.beta * (new_level - self._level)
            + (1.0 - self.beta) * phi * self._trend
        )
        self._seasonal[s_idx] = self.gamma_s * (value - new_level) + (
            1.0 - self.gamma_s
        ) * self._seasonal[s_idx]
        self._level = new_level
        self._season_index = (s_idx + 1) % self.period

    def _forecast(self, horizon: int) -> np.ndarray:
        assert self._seasonal is not None
        phi = self.damping
        weights = np.cumsum(phi ** np.arange(1, horizon + 1))
        out = np.empty(horizon)
        for h in range(1, horizon + 1):
            s_idx = (self._season_index + h - 1) % self.period
            out[h - 1] = (
                self._level + weights[h - 1] * self._trend
                + self._seasonal[s_idx]
            )
        return out

    def _state(self) -> dict:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma_s": self.gamma_s,
            "level": float(self._level),
            "trend": float(self._trend),
            "seasonal": (
                None if self._seasonal is None else self._seasonal.copy()
            ),
            "season_index": self._season_index,
        }

    def _load_state(self, state: dict) -> None:
        self.alpha = float(state["alpha"])
        self.beta = float(state["beta"])
        self.gamma_s = float(state["gamma_s"])
        self._level = float(state["level"])
        self._trend = float(state["trend"])
        seasonal = state["seasonal"]
        self._seasonal = (
            None if seasonal is None else np.asarray(seasonal, dtype=float)
        )
        self._season_index = int(state["season_index"])


@register_forecaster("ses")
def _build_ses(config, cluster: int, group: int) -> SimpleExponentialSmoothing:
    return SimpleExponentialSmoothing()


@register_forecaster("holt")
def _build_holt(config, cluster: int, group: int) -> HoltLinear:
    return HoltLinear()


@register_forecaster("holt_winters")
def _build_holt_winters(config, cluster: int, group: int) -> HoltWinters:
    return HoltWinters(period=config.hw_period)
