"""Columnar model layer: one bank per resource group, not K·d objects.

The paper trains one forecaster per cluster centroid and re-forecasts
every slot.  With the fleet state already columnar, the model layer is
the remaining Python-loop cost: ``num_groups × num_clusters`` objects,
each fitted one scalar series at a time.  A :class:`ForecasterBank`
replaces the per-``(cluster, dim)`` objects of one resource group with
a single structure-of-arrays model:

* :meth:`ForecasterBank.fit` consumes the whole centroid tensor
  ``(T, M, d)`` — ``M`` clusters of a ``d``-dimensional group — at once;
* :meth:`ForecasterBank.update` advances the transient state with one
  ``(M, d)`` slot of centroids;
* :meth:`ForecasterBank.forecast` emits all ``H × M × d`` forecasts in
  one call.

Vectorized banks exist for the closed-form models — sample-and-hold,
long-term mean, exponential smoothing and Yule–Walker AR — built on the
batched kernels their scalar classes share
(:func:`~repro.forecasting.sample_hold.hold_forecast`,
:func:`~repro.forecasting.sample_hold.running_mean`,
:func:`~repro.forecasting.exponential.ewma_run`,
:func:`~repro.forecasting.yule_walker.fit_yule_walker_batch`,
:func:`~repro.forecasting.yule_walker.ar_forecast_batch`), so a bank is
bit-identical to a loop of scalar forecasters by construction.  Every
other model (ARIMA grid search, LSTM, user-registered forecasters)
keeps working through :class:`ObjectBank`, the generic adapter that
wraps one scalar forecaster per ``(cluster, dim)`` series.

Banks self-register in :data:`repro.registry.FORECASTER_BANKS` under
the model names they accelerate; :func:`resolve_bank` picks the
registered bank for ``ForecastingConfig.model`` and falls back to
:class:`ObjectBank` for everything else (``ForecastingConfig.bank``
overrides the choice explicitly).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DataError,
    NotFittedError,
    ReproError,
)
from repro.forecasting.exponential import ewma_run, fit_ses_alpha
from repro.forecasting.sample_hold import hold_forecast, running_mean
from repro.forecasting.yule_walker import (
    ar_forecast_batch,
    fit_yule_walker_batch,
)
from repro.registry import (
    FORECASTERS,
    FORECASTER_BANKS,
    register_forecaster_bank,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.config import ForecastingConfig

#: A forecaster factory receives ``(cluster_id, group_index)`` — the
#: persistent cluster id and the index of the resource group being
#: forecast (one group per resource under scalar clustering, a single
#: group 0 under joint clustering) — and returns a fresh, unfitted
#: forecaster.  This is the single factory contract consumed by
#: :class:`ObjectBank`.
ForecasterFactory = Callable[[int, int], object]


def default_forecaster_factory(config: "ForecastingConfig") -> ForecasterFactory:
    """Build the registry-backed factory implied by a ForecastingConfig.

    The returned factory receives ``(cluster, group)`` and delegates to
    the builder registered under ``config.model`` in
    :data:`repro.registry.FORECASTERS`.
    """

    def factory(cluster: int, group: int) -> object:
        return FORECASTERS.create(config.model, config, cluster, group)

    return factory


class BankForecastError(ReproError):
    """Some — not all — clusters of a bank failed to forecast.

    Raised by :class:`ObjectBank` (and any custom bank that can fail
    per cluster) so the pipeline can apply its hold-last-centroid
    fallback to exactly the failed clusters while keeping the others'
    forecasts.

    Attributes:
        forecasts: The ``(H, M, d)`` tensor with every non-failed
            cluster's forecasts filled in (failed clusters' slices are
            unspecified).
        failures: ``{cluster_id: exception}`` for each failed cluster.
    """

    def __init__(
        self, forecasts: np.ndarray, failures: Dict[int, ReproError]
    ) -> None:
        ids = ", ".join(str(j) for j in sorted(failures))
        super().__init__(f"forecast failed for cluster(s) {ids}")
        self.forecasts = forecasts
        self.failures = failures


class ForecasterBank(abc.ABC):
    """Batched forecaster over all ``(cluster, dim)`` series of a group.

    Subclasses implement ``_fit``/``_update``/``_forecast`` on the
    flattened ``(T, S)`` / ``(S,)`` / ``(H, S)`` views, where
    ``S = num_clusters * dim`` and series ``j * dim + r`` is dimension
    ``r`` of cluster ``j``'s centroid.

    Args:
        num_clusters: Number of clusters M (= series per dimension).
        dim: Dimensionality d of this group's centroids.

    Attributes:
        dtype: Floating dtype of the bank's series state (default
            float64).  Set by :func:`resolve_bank` from the pipeline's
            configured column dtype; every ``fit``/``update`` input and
            restored state array is cast to it, so a float32 pipeline's
            model layer stays float32 end to end.
    """

    def __init__(self, num_clusters: int, dim: int) -> None:
        if num_clusters < 1 or dim < 1:
            raise ConfigurationError(
                f"num_clusters and dim must be >= 1, got "
                f"({num_clusters}, {dim})"
            )
        self.num_clusters = num_clusters
        self.dim = dim
        self.dtype = np.dtype(np.float64)
        self._fitted = False

    @property
    def num_series(self) -> int:
        """Total independent series ``S = num_clusters * dim``."""
        return self.num_clusters * self.dim

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, series: np.ndarray) -> "ForecasterBank":
        """(Re)train every series' model on its full history at once.

        Args:
            series: Centroid tensor, shape ``(T, M, d)``.
        """
        tensor = np.asarray(series, dtype=self.dtype)
        if tensor.ndim != 3 or tensor.shape[1:] != (
            self.num_clusters,
            self.dim,
        ):
            raise DataError(
                f"series must be (T, {self.num_clusters}, {self.dim}), "
                f"got {tensor.shape}"
            )
        if tensor.shape[0] == 0:
            raise DataError("series is empty")
        if not np.isfinite(tensor).all():
            raise DataError("series contains NaN or infinite values")
        self._fit(tensor.reshape(tensor.shape[0], -1))
        self._fitted = True
        return self

    def update(self, values: np.ndarray) -> None:
        """Append one slot of centroids without refitting parameters.

        Args:
            values: Centroids of this slot, shape ``(M, d)``.
        """
        matrix = np.asarray(values, dtype=self.dtype)
        if matrix.shape != (self.num_clusters, self.dim):
            raise DataError(
                f"values must be ({self.num_clusters}, {self.dim}), "
                f"got {matrix.shape}"
            )
        if not np.isfinite(matrix).all():
            raise DataError("values contain NaN or infinite entries")
        self._update(matrix.reshape(-1))

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast every series ``horizon`` steps ahead.

        Returns:
            Tensor of shape ``(horizon, M, d)``.

        Raises:
            BankForecastError: When only some clusters fail (carries the
                partial forecasts).
        """
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__}.forecast called before fit"
            )
        if horizon < 1:
            raise DataError(f"horizon must be >= 1, got {horizon}")
        # The shared closed-form kernels compute in float64; cast back
        # to the bank's configured dtype (an exact no-op for float64).
        flat = np.asarray(self._forecast(horizon), dtype=self.dtype)
        return flat.reshape(horizon, self.num_clusters, self.dim)

    @abc.abstractmethod
    def _fit(self, matrix: np.ndarray) -> None:
        """Train on the flattened series matrix ``(T, S)``."""

    def _update(self, values: np.ndarray) -> None:
        """Advance transient state with one flattened slot ``(S,)``."""

    @abc.abstractmethod
    def _forecast(self, horizon: int) -> np.ndarray:
        """Forecast the flattened series, returning ``(horizon, S)``."""

    # -- checkpoint state contract --------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Serializable bank state (checkpoint contract).

        Returns a dict of JSON-able scalars / numpy arrays such that a
        freshly built bank of the same shape, after :meth:`set_state`,
        continues bit-identically — every future ``update``/``forecast``
        matches a bank that never stopped.  Subclasses contribute their
        model parameters via :meth:`_state`/:meth:`_load_state`.
        """
        return {"fitted": self._fitted, **self._state()}

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a state captured by :meth:`get_state`."""
        self._fitted = bool(state["fitted"])
        self._load_state(state)

    def _state(self) -> Dict[str, object]:
        """Model parameters for :meth:`get_state` (subclass hook)."""
        return {}

    def _load_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`_state` output (subclass hook)."""


class SampleHoldBank(ForecasterBank):
    """All clusters' sample-and-hold forecasts in one array op."""

    def __init__(self, num_clusters: int, dim: int) -> None:
        super().__init__(num_clusters, dim)
        self._last: Optional[np.ndarray] = None

    def _fit(self, matrix: np.ndarray) -> None:
        self._last = matrix[-1].copy()

    def _update(self, values: np.ndarray) -> None:
        self._last = values.copy()

    def _forecast(self, horizon: int) -> np.ndarray:
        return hold_forecast(self._last, horizon)

    def _state(self) -> Dict[str, object]:
        return {"last": self._last}

    def _load_state(self, state: Dict[str, object]) -> None:
        last = state["last"]
        self._last = (
            None if last is None else np.asarray(last, dtype=self.dtype)
        )


class MeanBank(ForecasterBank):
    """Long-term mean of every series, recomputed over the full history
    on update — matching :class:`~repro.forecasting.sample_hold.
    MeanForecaster` exactly."""

    def __init__(self, num_clusters: int, dim: int) -> None:
        super().__init__(num_clusters, dim)
        self._rows: List[np.ndarray] = []
        self._mean: Optional[np.ndarray] = None

    def _fit(self, matrix: np.ndarray) -> None:
        self._rows = [row for row in matrix]
        self._mean = running_mean(matrix)

    def _update(self, values: np.ndarray) -> None:
        self._rows.append(values.copy())
        self._mean = running_mean(np.asarray(self._rows, dtype=self.dtype))

    def _forecast(self, horizon: int) -> np.ndarray:
        return hold_forecast(self._mean, horizon)

    def _state(self) -> Dict[str, object]:
        return {
            "rows": np.stack(self._rows) if self._rows else None,
            "mean": self._mean,
        }

    def _load_state(self, state: Dict[str, object]) -> None:
        rows = state["rows"]
        self._rows = (
            [] if rows is None
            else [row.copy() for row in np.asarray(rows, dtype=self.dtype)]
        )
        mean = state["mean"]
        self._mean = (
            None if mean is None else np.asarray(mean, dtype=self.dtype)
        )


class ExponentialBank(ForecasterBank):
    """Simple exponential smoothing over all series in lockstep.

    The level recurrence and forecasts are fully batched
    (:func:`~repro.forecasting.exponential.ewma_run`); the per-series
    smoothing weight, when not fixed, is fitted with the same bounded
    scalar optimizer as :class:`~repro.forecasting.exponential.
    SimpleExponentialSmoothing` — one optimization per series, since
    each series has its own objective landscape.

    Args:
        alpha: Fixed smoothing weight in (0, 1]; fitted per series from
            data when None.
    """

    def __init__(
        self, num_clusters: int, dim: int, alpha: Optional[float] = None
    ) -> None:
        super().__init__(num_clusters, dim)
        if alpha is not None and not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self._fixed_alpha = alpha
        self._alpha: np.ndarray | float = (
            alpha if alpha is not None else 0.5
        )
        self._level: Optional[np.ndarray] = None

    @property
    def alpha(self) -> np.ndarray:
        """Smoothing weight per series, shape ``(S,)``."""
        return np.broadcast_to(
            np.asarray(self._alpha, dtype=float), (self.num_series,)
        ).copy()

    def _fit(self, matrix: np.ndarray) -> None:
        if self._fixed_alpha is None and matrix.shape[0] >= 3:
            self._alpha = np.asarray(
                [fit_ses_alpha(matrix[:, s]) for s in range(matrix.shape[1])],
                dtype=self.dtype,
            )
        self._level = ewma_run(matrix, self._alpha)

    def _update(self, values: np.ndarray) -> None:
        if self._fitted:
            self._level = (
                self._alpha * values + (1.0 - self._alpha) * self._level
            )

    def _forecast(self, horizon: int) -> np.ndarray:
        return hold_forecast(self._level, horizon)

    def _state(self) -> Dict[str, object]:
        return {
            "alpha": (
                self._alpha if isinstance(self._alpha, float)
                else np.asarray(self._alpha, dtype=float)
            ),
            "level": self._level,
        }

    def _load_state(self, state: Dict[str, object]) -> None:
        alpha = state["alpha"]
        self._alpha = (
            float(alpha) if np.ndim(alpha) == 0
            else np.asarray(alpha, dtype=self.dtype)
        )
        level = state["level"]
        self._level = (
            None if level is None else np.asarray(level, dtype=self.dtype)
        )


class YuleWalkerBank(ForecasterBank):
    """Yule–Walker AR(p) over all series: one batched lag-matrix solve.

    Args:
        order: AR order p shared by every series.
    """

    def __init__(self, num_clusters: int, dim: int, order: int = 2) -> None:
        super().__init__(num_clusters, dim)
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        self.order = order
        self._coefficients: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._window: List[np.ndarray] = []

    @property
    def coefficients(self) -> np.ndarray:
        """AR coefficients per series, shape ``(order, S)``."""
        if self._coefficients is None:
            return np.zeros((self.order, self.num_series), dtype=self.dtype)
        return self._coefficients.copy()

    def _fit(self, matrix: np.ndarray) -> None:
        self._mean = running_mean(matrix)
        self._coefficients = fit_yule_walker_batch(matrix, self.order)
        self._window = [row.copy() for row in matrix[-self.order :]]

    def _update(self, values: np.ndarray) -> None:
        self._window.append(values.copy())
        del self._window[: -self.order]

    def _forecast(self, horizon: int) -> np.ndarray:
        if len(self._window) < self.order:
            raise DataError(
                f"need at least {self.order} observations to forecast"
            )
        return ar_forecast_batch(
            self._coefficients,
            self._mean,
            np.asarray(self._window[-self.order :], dtype=self.dtype),
            horizon,
        )

    def _state(self) -> Dict[str, object]:
        return {
            "coefficients": self._coefficients,
            "mean": self._mean,
            "window": np.stack(self._window) if self._window else None,
        }

    def _load_state(self, state: Dict[str, object]) -> None:
        coefficients = state["coefficients"]
        self._coefficients = (
            None if coefficients is None
            else np.asarray(coefficients, dtype=self.dtype)
        )
        mean = state["mean"]
        self._mean = (
            None if mean is None else np.asarray(mean, dtype=self.dtype)
        )
        window = state["window"]
        self._window = (
            [] if window is None
            else [row.copy() for row in np.asarray(window, dtype=self.dtype)]
        )


class ObjectBank(ForecasterBank):
    """Generic adapter running one scalar forecaster per series.

    Keeps every model without a vectorized bank — ARIMA grid search,
    LSTM, Holt/Holt–Winters, user-registered forecasters — working
    behind the bank interface: ``dim > 1`` groups get one scalar
    forecaster per centroid dimension (what the deleted
    ``_MultivariateForecaster`` wrapper did, minus its late-binding
    factory hazard — every forecaster now comes from the one factory
    passed in).

    Args:
        factory: The :data:`ForecasterFactory` building one fresh
            forecaster per ``(cluster, group)`` call.
        num_clusters: Number of clusters M.
        dim: Centroid dimensionality d of this group.
        group: The resource-group index forwarded to the factory.
    """

    def __init__(
        self,
        factory: ForecasterFactory,
        num_clusters: int,
        dim: int,
        *,
        group: int = 0,
    ) -> None:
        super().__init__(num_clusters, dim)
        self._models: List[List[object]] = [
            [factory(j, group) for _ in range(dim)]
            for j in range(num_clusters)
        ]

    @property
    def models(self) -> List[List[object]]:
        """The wrapped forecasters, ``models[cluster][dim]``."""
        return [list(per_cluster) for per_cluster in self._models]

    def _fit(self, matrix: np.ndarray) -> None:
        # repro: noqa KER-003(ObjectBank is the per-object fallback path by contract)
        for j, per_cluster in enumerate(self._models):
            for r, model in enumerate(per_cluster):
                model.fit(matrix[:, j * self.dim + r])

    def _update(self, values: np.ndarray) -> None:
        # repro: noqa KER-003(ObjectBank is the per-object fallback path by contract)
        for j, per_cluster in enumerate(self._models):
            for r, model in enumerate(per_cluster):
                model.update(float(values[j * self.dim + r]))

    def _forecast(self, horizon: int) -> np.ndarray:
        out = np.zeros((horizon, self.num_series), dtype=float)
        failures: Dict[int, ReproError] = {}
        # repro: noqa KER-003(ObjectBank is the per-object fallback path by contract)
        for j, per_cluster in enumerate(self._models):
            try:
                for r, model in enumerate(per_cluster):
                    out[:, j * self.dim + r] = model.forecast(horizon)
            except ReproError as exc:
                failures[j] = exc
        if failures:
            raise BankForecastError(
                out.reshape(horizon, self.num_clusters, self.dim), failures
            )
        return out

    def _state(self) -> Dict[str, object]:
        # One state dict per wrapped forecaster, via the documented
        # Forecaster get_state/set_state protocol — custom models used
        # behind an ObjectBank must implement it to be checkpointable.
        states = []
        # repro: noqa KER-003(per-object state capture; ObjectBank wraps arbitrary models)
        for j, per_cluster in enumerate(self._models):
            row = []
            for r, model in enumerate(per_cluster):
                getter = getattr(model, "get_state", None)
                if getter is None:
                    raise CheckpointError(
                        f"forecaster {type(model).__name__} (cluster {j}, "
                        f"dim {r}) does not implement the "
                        "get_state/set_state checkpoint protocol; add "
                        "both methods to make it checkpointable (see "
                        "repro.forecasting.base.Forecaster.get_state)"
                    )
                row.append(getter())
            states.append(row)
        return {"models": states}

    def _load_state(self, state: Dict[str, object]) -> None:
        states = state["models"]
        if len(states) != self.num_clusters or any(
            len(row) != self.dim for row in states
        ):
            raise CheckpointError(
                f"object-bank state holds "
                f"{len(states)}x{len(states[0]) if states else 0} models, "
                f"bank has {self.num_clusters}x{self.dim}"
            )
        # repro: noqa KER-003(per-object state restore; ObjectBank wraps arbitrary models)
        for j, per_cluster in enumerate(self._models):
            for r, model in enumerate(per_cluster):
                setter = getattr(model, "set_state", None)
                if setter is None:
                    raise CheckpointError(
                        f"forecaster {type(model).__name__} (cluster {j}, "
                        f"dim {r}) does not implement the "
                        "get_state/set_state checkpoint protocol"
                    )
                setter(states[j][r])


@register_forecaster_bank("sample_hold")
def _build_sample_hold_bank(config, num_clusters: int, dim: int) -> SampleHoldBank:
    return SampleHoldBank(num_clusters, dim)


@register_forecaster_bank("mean")
def _build_mean_bank(config, num_clusters: int, dim: int) -> MeanBank:
    return MeanBank(num_clusters, dim)


@register_forecaster_bank("ses")
def _build_ses_bank(config, num_clusters: int, dim: int) -> ExponentialBank:
    return ExponentialBank(num_clusters, dim)


@register_forecaster_bank("ar")
def _build_ar_bank(config, num_clusters: int, dim: int) -> YuleWalkerBank:
    return YuleWalkerBank(num_clusters, dim, order=config.ar_order)


def resolved_bank_name(config: "ForecastingConfig") -> str:
    """The bank a config resolves to: a registered name or ``"object"``.

    ``config.bank == "auto"`` picks the bank registered under
    ``config.model`` in :data:`repro.registry.FORECASTER_BANKS` when one
    exists, the :class:`ObjectBank` adapter otherwise; any other value
    of ``config.bank`` is taken literally.
    """
    choice = getattr(config, "bank", "auto")
    if choice == "auto":
        return config.model if config.model in FORECASTER_BANKS else "object"
    return choice


def resolve_bank(
    config: "ForecastingConfig",
    *,
    num_clusters: int,
    dim: int,
    group: int = 0,
    factory: Optional[ForecasterFactory] = None,
    dtype: "np.typing.DTypeLike" = np.float64,
) -> ForecasterBank:
    """Build the forecaster bank of one resource group.

    Args:
        config: The forecasting configuration (``model``, ``bank`` and
            model hyperparameters).
        num_clusters: Number of clusters M.
        dim: Centroid dimensionality d of the group.
        group: The group index (forwarded to object factories).
        factory: Custom :data:`ForecasterFactory` override — runs
            behind :class:`ObjectBank`, since a vectorized bank cannot
            represent arbitrary user models.  Combining it with a
            config that *requires* the vectorized path
            (``config.bank == config.model``) is a contradiction and
            raises instead of silently falling back.
        dtype: Floating dtype of the bank's series state (the
            pipeline's configured column dtype; default float64).
    """
    if factory is not None:
        if getattr(config, "bank", "auto") not in ("auto", "object"):
            raise ConfigurationError(
                f"bank {config.bank!r} requires the vectorized path, "
                "which a custom forecaster_factory cannot provide; "
                "drop the factory or use bank='auto'/'object'"
            )
        bank: ForecasterBank = ObjectBank(
            factory, num_clusters, dim, group=group
        )
    else:
        name = resolved_bank_name(config)
        if name == "object":
            bank = ObjectBank(
                default_forecaster_factory(config),
                num_clusters,
                dim,
                group=group,
            )
        else:
            bank = FORECASTER_BANKS.create(name, config, num_clusters, dim)
    bank.dtype = np.dtype(dtype)
    return bank


__all__ = [
    "BankForecastError",
    "ExponentialBank",
    "ForecasterBank",
    "ForecasterFactory",
    "MeanBank",
    "ObjectBank",
    "SampleHoldBank",
    "YuleWalkerBank",
    "default_forecaster_factory",
    "resolve_bank",
    "resolved_bank_name",
]
