"""Time-series statistics supporting ARIMA order selection (Sec. VI-A3).

Provides autocorrelation (ACF), partial autocorrelation (PACF via
Durbin–Levinson), differencing operators (regular and seasonal, with an
exact polynomial-based inverse used for multi-step forecast integration),
and the corrected Akaike information criterion (AICc) used by the paper's
grid search.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataError


def acf(series: np.ndarray, num_lags: int) -> np.ndarray:
    """Sample autocorrelation function.

    Args:
        series: 1-D array.
        num_lags: Largest lag; returns lags ``0..num_lags``.

    Returns:
        Array of shape ``(num_lags + 1,)`` with ``acf[0] == 1``.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {x.shape}")
    n = x.size
    if n < 2:
        raise DataError("need at least 2 observations for ACF")
    if num_lags >= n:
        raise DataError(f"num_lags={num_lags} must be < series length {n}")
    centered = x - x.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        # Constant series: autocorrelation undefined; by convention return
        # 1 at lag 0 and 0 elsewhere.
        out = np.zeros(num_lags + 1)
        out[0] = 1.0
        return out
    out = np.empty(num_lags + 1)
    for lag in range(num_lags + 1):
        out[lag] = float(np.dot(centered[: n - lag], centered[lag:])) / denom
    return out


def pacf(series: np.ndarray, num_lags: int) -> np.ndarray:
    """Partial autocorrelation via the Durbin–Levinson recursion.

    Returns:
        Array of shape ``(num_lags + 1,)`` with ``pacf[0] == 1``.
    """
    rho = acf(series, num_lags)
    out = np.zeros(num_lags + 1)
    out[0] = 1.0
    if num_lags == 0:
        return out
    phi_prev = np.zeros(num_lags + 1)
    phi_curr = np.zeros(num_lags + 1)
    phi_prev[1] = rho[1]
    out[1] = rho[1]
    for k in range(2, num_lags + 1):
        num = rho[k] - float(np.dot(phi_prev[1:k], rho[1:k][::-1]))
        den = 1.0 - float(np.dot(phi_prev[1:k], rho[1:k]))
        phi_kk = num / den if den != 0 else 0.0
        phi_curr[:] = 0.0
        phi_curr[k] = phi_kk
        for j in range(1, k):
            phi_curr[j] = phi_prev[j] - phi_kk * phi_prev[k - j]
        out[k] = phi_kk
        phi_prev, phi_curr = phi_curr, phi_prev
    return out


def differencing_polynomial(d: int, seasonal_d: int, period: int) -> np.ndarray:
    """Coefficients of ``(1 − B)^d (1 − B^s)^D`` in increasing powers of B.

    ``w_t = Σ_k c_k x_{t−k}`` with ``c_0 = 1``.
    """
    if d < 0 or seasonal_d < 0:
        raise DataError("differencing orders must be >= 0")
    if seasonal_d > 0 and period < 2:
        raise DataError("seasonal differencing requires period >= 2")
    poly = np.array([1.0])
    for _ in range(d):
        poly = np.convolve(poly, np.array([1.0, -1.0]))
    if seasonal_d > 0:
        seasonal = np.zeros(period + 1)
        seasonal[0] = 1.0
        seasonal[period] = -1.0
        for _ in range(seasonal_d):
            poly = np.convolve(poly, seasonal)
    return poly


def difference(
    series: np.ndarray, d: int, seasonal_d: int = 0, period: int = 0
) -> np.ndarray:
    """Apply ``(1 − B)^d (1 − B^s)^D`` to a series.

    Returns the differenced series, shorter by ``d + D·s`` observations.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {x.shape}")
    poly = differencing_polynomial(d, seasonal_d, period)
    lag = poly.size - 1
    if x.size <= lag:
        raise DataError(
            f"series of length {x.size} too short for differencing lag {lag}"
        )
    if lag == 0:
        return x.copy()
    out = np.zeros(x.size - lag)
    for k, coeff in enumerate(poly):
        if coeff != 0.0:
            out += coeff * x[lag - k : x.size - k]
    return out


def undifference_forecasts(
    history: np.ndarray,
    differenced_forecasts: np.ndarray,
    d: int,
    seasonal_d: int = 0,
    period: int = 0,
) -> np.ndarray:
    """Integrate forecasts of a differenced series back to the original.

    Uses the exact recursion ``x_{t+h} = w_{t+h} − Σ_{k≥1} c_k x_{t+h−k}``
    where ``c`` is the differencing polynomial and forecasted ``x`` values
    feed back in as ``h`` grows.

    Args:
        history: Original (undifferenced) observations up to time ``t``.
        differenced_forecasts: Forecasts ``ŵ_{t+1..t+H}``.
        d, seasonal_d, period: Differencing specification.

    Returns:
        Forecasts ``x̂_{t+1..t+H}`` on the original scale.
    """
    x = np.asarray(history, dtype=float)
    w_hat = np.asarray(differenced_forecasts, dtype=float)
    poly = differencing_polynomial(d, seasonal_d, period)
    lag = poly.size - 1
    if lag == 0:
        return w_hat.copy()
    if x.size < lag:
        raise DataError(
            f"history of length {x.size} too short for differencing lag {lag}"
        )
    extended = list(x[-lag:])
    out = np.empty_like(w_hat)
    for h, w in enumerate(w_hat):
        value = w
        for k in range(1, lag + 1):
            if poly[k] != 0.0:
                value -= poly[k] * extended[-k]
        extended.append(value)
        out[h] = value
    return out


def aicc(sse: float, num_observations: int, num_parameters: int) -> float:
    """Corrected Akaike information criterion from a CSS fit.

    Uses the Gaussian profile log-likelihood ``−(n/2)·(log(2π σ̂²) + 1)``
    with ``σ̂² = SSE / n``, plus the small-sample correction term.  When
    the correction denominator ``n − k − 1`` is non-positive the criterion
    is infinite (the model is too rich for the sample).
    """
    if num_observations <= 0:
        raise DataError("num_observations must be positive")
    if sse < 0:
        raise DataError("sse must be non-negative")
    n = float(num_observations)
    k = float(num_parameters)
    sigma2 = max(sse / n, 1e-300)
    log_likelihood = -0.5 * n * (np.log(2.0 * np.pi * sigma2) + 1.0)
    aic = 2.0 * k - 2.0 * log_likelihood
    denom = n - k - 1.0
    if denom <= 0:
        return float("inf")
    return float(aic + (2.0 * k * (k + 1.0)) / denom)


def ljung_box(series: np.ndarray, num_lags: int) -> Tuple[float, int]:
    """Ljung–Box portmanteau statistic for residual whiteness.

    Returns:
        Tuple ``(Q, dof)``; under the null of white noise ``Q`` is
        approximately chi-squared with ``dof = num_lags`` degrees of
        freedom.  Useful for diagnostic tests of ARIMA residuals.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    rho = acf(x, num_lags)
    q = 0.0
    for lag in range(1, num_lags + 1):
        q += rho[lag] ** 2 / (n - lag)
    return float(n * (n + 2) * q), num_lags
