"""Neural-network layers implemented in pure numpy.

Provides an LSTM layer with full backpropagation-through-time and a dense
layer with optional ReLU activation — the building blocks of the paper's
forecasting network (two stacked LSTM layers topped with a ReLU dense
layer, Sec. VI-A3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataError


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class Layer:
    """Minimal layer protocol: named parameters + matching gradients."""

    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    @property
    def gradients(self) -> Dict[str, np.ndarray]:
        raise NotImplementedError


class LSTMLayer(Layer):
    """Single LSTM layer processing full sequences.

    Gate layout within the fused weight matrices is ``[i, f, g, o]``
    (input, forget, candidate, output).  The forget-gate bias is
    initialized to 1, the usual trick to avoid premature forgetting.

    Args:
        input_dim: Feature dimension of the inputs.
        hidden_dim: Number of hidden units H.
        rng: Generator for weight initialization.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if input_dim < 1 or hidden_dim < 1:
            raise ConfigurationError("input_dim and hidden_dim must be >= 1")
        if rng is None:
            rng = np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        scale_w = 1.0 / np.sqrt(input_dim)
        scale_u = 1.0 / np.sqrt(hidden_dim)
        self.W = rng.uniform(-scale_w, scale_w, size=(input_dim, 4 * hidden_dim))
        self.U = rng.uniform(-scale_u, scale_u, size=(hidden_dim, 4 * hidden_dim))
        self.b = np.zeros(4 * hidden_dim)
        self.b[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias
        self.dW = np.zeros_like(self.W)
        self.dU = np.zeros_like(self.U)
        self.db = np.zeros_like(self.b)
        self._cache: Optional[dict] = None

    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "U": self.U, "b": self.b}

    @property
    def gradients(self) -> Dict[str, np.ndarray]:
        return {"W": self.dW, "U": self.dU, "b": self.db}

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the layer over a batch of sequences.

        Args:
            inputs: Shape ``(batch, time, input_dim)``.

        Returns:
            Hidden states of shape ``(batch, time, hidden_dim)``.
        """
        x = np.asarray(inputs, dtype=float)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise DataError(
                f"inputs must be (B, T, {self.input_dim}), got {x.shape}"
            )
        batch, steps, _ = x.shape
        hidden = self.hidden_dim
        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        h_seq = np.zeros((batch, steps, hidden))
        gates_seq = np.zeros((batch, steps, 4 * hidden))
        c_seq = np.zeros((batch, steps, hidden))
        c_prev_seq = np.zeros((batch, steps, hidden))
        h_prev_seq = np.zeros((batch, steps, hidden))
        for t in range(steps):
            z = x[:, t, :] @ self.W + h @ self.U + self.b
            i = sigmoid(z[:, :hidden])
            f = sigmoid(z[:, hidden : 2 * hidden])
            g = np.tanh(z[:, 2 * hidden : 3 * hidden])
            o = sigmoid(z[:, 3 * hidden :])
            c_prev_seq[:, t, :] = c
            h_prev_seq[:, t, :] = h
            c = f * c + i * g
            h = o * np.tanh(c)
            h_seq[:, t, :] = h
            c_seq[:, t, :] = c
            gates_seq[:, t, :] = np.concatenate([i, f, g, o], axis=1)
        self._cache = {
            "x": x,
            "h_seq": h_seq,
            "c_seq": c_seq,
            "c_prev_seq": c_prev_seq,
            "h_prev_seq": h_prev_seq,
            "gates_seq": gates_seq,
        }
        return h_seq

    def backward(self, grad_h_seq: np.ndarray) -> np.ndarray:
        """Backpropagate through time.

        Args:
            grad_h_seq: Gradient of the loss w.r.t. every hidden state,
                shape ``(batch, time, hidden_dim)``.

        Returns:
            Gradient w.r.t. the inputs, shape ``(batch, time, input_dim)``.
        """
        if self._cache is None:
            raise DataError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        hidden = self.hidden_dim
        grad = np.asarray(grad_h_seq, dtype=float)
        if grad.shape != (batch, steps, hidden):
            raise DataError(
                f"grad_h_seq must be {(batch, steps, hidden)}, got {grad.shape}"
            )

        self.dW[:] = 0.0
        self.dU[:] = 0.0
        self.db[:] = 0.0
        dx = np.zeros_like(x)
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))
        for t in range(steps - 1, -1, -1):
            gates = cache["gates_seq"][:, t, :]
            i = gates[:, :hidden]
            f = gates[:, hidden : 2 * hidden]
            g = gates[:, 2 * hidden : 3 * hidden]
            o = gates[:, 3 * hidden :]
            c = cache["c_seq"][:, t, :]
            c_prev = cache["c_prev_seq"][:, t, :]
            h_prev = cache["h_prev_seq"][:, t, :]
            tanh_c = np.tanh(c)

            dh = grad[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dc_next = dc * f

            dz_i = di * i * (1.0 - i)
            dz_f = df * f * (1.0 - f)
            dz_g = dg * (1.0 - g**2)
            dz_o = do * o * (1.0 - o)
            dz = np.concatenate([dz_i, dz_f, dz_g, dz_o], axis=1)

            self.dW += x[:, t, :].T @ dz
            self.dU += h_prev.T @ dz
            self.db += dz.sum(axis=0)
            dx[:, t, :] = dz @ self.W.T
            dh_next = dz @ self.U.T
        return dx


class DenseLayer(Layer):
    """Fully connected layer with optional ReLU activation.

    Args:
        input_dim: Input feature dimension.
        output_dim: Output dimension.
        activation: ``"relu"`` or ``"linear"``.
        bias_init: Initial bias value.  For a ReLU *output* head in
            regression, a positive bias (e.g. the centre of the scaled
            target range) keeps the unit alive at initialization —
            otherwise unlucky seeds start with a dead output neuron that
            gradient descent can never revive (its gradient is zero).
        rng: Generator for weight initialization.
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        *,
        activation: str = "relu",
        bias_init: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if activation not in ("relu", "linear"):
            raise ConfigurationError(
                f"activation must be 'relu' or 'linear', got {activation!r}"
            )
        if rng is None:
            rng = np.random.default_rng()
        scale = 1.0 / np.sqrt(input_dim)
        self.W = rng.uniform(-scale, scale, size=(input_dim, output_dim))
        self.b = np.full(output_dim, float(bias_init))
        self.activation = activation
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    @property
    def gradients(self) -> Dict[str, np.ndarray]:
        return {"W": self.dW, "b": self.db}

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Apply the affine map (+ activation) to ``(batch, input_dim)``."""
        x = np.asarray(inputs, dtype=float)
        pre = x @ self.W + self.b
        out = np.maximum(pre, 0.0) if self.activation == "relu" else pre
        self._cache = (x, pre)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate; returns gradient w.r.t. the inputs."""
        if self._cache is None:
            raise DataError("backward called before forward")
        x, pre = self._cache
        grad = np.asarray(grad_output, dtype=float)
        if self.activation == "relu":
            grad = grad * (pre > 0)
        self.dW[:] = x.T @ grad
        self.db[:] = grad.sum(axis=0)
        return grad @ self.W.T
