"""Gradient-descent optimizers for the numpy neural network."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.forecasting.lstm.layers import Layer


def clip_gradients(layers: Sequence[Layer], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns:
        The pre-clipping global norm (useful for monitoring).
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for layer in layers:
        for grad in layer.gradients.values():
            total += float(np.sum(grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for layer in layers:
            for grad in layer.gradients.values():
                grad *= scale
    return norm


class Adam:
    """Adam optimizer over a list of layers.

    Args:
        layers: The layers whose parameters to update; each exposes
            ``parameters`` and ``gradients`` dicts with matching keys.
        learning_rate: Step size α.
        beta1, beta2: Exponential decay rates of the moment estimates.
        epsilon: Denominator fuzz factor.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigurationError("betas must be in [0, 1)")
        self.layers = list(layers)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._m: List[Dict[str, np.ndarray]] = [
            {k: np.zeros_like(v) for k, v in layer.parameters.items()}
            for layer in self.layers
        ]
        self._v: List[Dict[str, np.ndarray]] = [
            {k: np.zeros_like(v) for k, v in layer.parameters.items()}
            for layer in self.layers
        ]

    def step(self) -> None:
        """Apply one Adam update using the layers' current gradients."""
        self._step += 1
        t = self._step
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for layer, m_state, v_state in zip(self.layers, self._m, self._v):
            params = layer.parameters
            grads = layer.gradients
            for key, param in params.items():
                grad = grads[key]
                m = m_state[key]
                v = v_state[key]
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad**2
                m_hat = m / bias1
                v_hat = v / bias2
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(
        self,
        layers: Sequence[Layer],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.layers = list(layers)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: List[Dict[str, np.ndarray]] = [
            {k: np.zeros_like(v) for k, v in layer.parameters.items()}
            for layer in self.layers
        ]

    def step(self) -> None:
        """Apply one (momentum) SGD update."""
        for layer, velocity in zip(self.layers, self._velocity):
            params = layer.parameters
            grads = layer.gradients
            for key, param in params.items():
                vel = velocity[key]
                vel *= self.momentum
                vel -= self.learning_rate * grads[key]
                param += vel
