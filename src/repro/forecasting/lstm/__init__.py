"""LSTM forecasting stack implemented from scratch in numpy."""

from repro.forecasting.lstm.forecaster import (
    LstmForecaster,
    MinMaxScaler,
    build_windows,
)
from repro.forecasting.lstm.layers import DenseLayer, LSTMLayer, sigmoid
from repro.forecasting.lstm.network import StackedLSTMNetwork
from repro.forecasting.lstm.optimizers import SGD, Adam, clip_gradients

__all__ = [
    "LstmForecaster",
    "MinMaxScaler",
    "build_windows",
    "DenseLayer",
    "LSTMLayer",
    "sigmoid",
    "StackedLSTMNetwork",
    "SGD",
    "Adam",
    "clip_gradients",
]
