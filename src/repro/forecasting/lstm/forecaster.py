"""LSTM forecaster conforming to the library's ``Forecaster`` interface.

Wraps :class:`StackedLSTMNetwork` with:

* sliding-window supervised-dataset construction from the centroid series;
* min–max input scaling (fitted on training data; ReLU output maps back to
  the non-negative utilization range);
* minibatch Adam training with gradient clipping;
* recursive multi-step forecasting (feed predictions back in).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.forecasting.base import Forecaster
from repro.forecasting.lstm.network import StackedLSTMNetwork
from repro.forecasting.lstm.optimizers import Adam, clip_gradients
from repro.registry import register_forecaster


def build_windows(
    series: np.ndarray, lookback: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a supervised dataset of (window, next value) pairs.

    Args:
        series: 1-D array of length ``n``.
        lookback: Window length L.

    Returns:
        ``(windows, targets)`` with shapes ``(n−L, L, 1)`` and ``(n−L,)``.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {x.shape}")
    if x.size <= lookback:
        raise DataError(
            f"series of length {x.size} too short for lookback {lookback}"
        )
    count = x.size - lookback
    windows = np.empty((count, lookback, 1))
    targets = np.empty(count)
    for idx in range(count):
        windows[idx, :, 0] = x[idx : idx + lookback]
        targets[idx] = x[idx + lookback]
    return windows, targets


class MinMaxScaler:
    """Affine scaling of a series into [0, 1] with safe inversion."""

    def __init__(self) -> None:
        self.low = 0.0
        self.span = 1.0

    def fit(self, series: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(series, dtype=float)
        self.low = float(x.min())
        span = float(x.max() - x.min())
        self.span = span if span > 1e-12 else 1.0
        return self

    def transform(self, series: np.ndarray) -> np.ndarray:
        return (np.asarray(series, dtype=float) - self.low) / self.span

    def inverse(self, series: np.ndarray) -> np.ndarray:
        return np.asarray(series, dtype=float) * self.span + self.low


class LstmForecaster(Forecaster):
    """Stacked-LSTM time-series forecaster.

    Args:
        hidden_dim: Hidden units per LSTM layer.
        lookback: Input window length.
        epochs: Training epochs per (re)fit.
        batch_size: Minibatch size.
        learning_rate: Adam step size.
        clip_norm: Global gradient-norm clip.
        seed: Seed controlling weight init and batch shuffling; the paper
            averages LSTM results over 10 runs because of this randomness.
    """

    def __init__(
        self,
        *,
        hidden_dim: int = 32,
        lookback: int = 16,
        epochs: int = 30,
        batch_size: int = 32,
        learning_rate: float = 1e-2,
        clip_norm: float = 5.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if lookback < 1:
            raise ConfigurationError(f"lookback must be >= 1, got {lookback}")
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.hidden_dim = hidden_dim
        self.lookback = lookback
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm
        self._rng = np.random.default_rng(seed)
        self._network: Optional[StackedLSTMNetwork] = None
        self._scaler = MinMaxScaler()
        self._loss_history: List[float] = []

    @property
    def loss_history(self) -> np.ndarray:
        """Mean epoch losses from the most recent fit."""
        return np.asarray(self._loss_history, dtype=float)

    # -- checkpoint state contract --------------------------------------

    def _state(self) -> dict:
        return {
            "rng": self._rng.bit_generator.state,
            "scaler_low": self._scaler.low,
            "scaler_span": self._scaler.span,
            "loss_history": np.asarray(self._loss_history, dtype=float),
            "network": (
                None if self._network is None else [
                    {
                        name: array.copy()
                        for name, array in layer.parameters.items()
                    }
                    for layer in self._network.layers
                ]
            ),
        }

    def _load_state(self, state: dict) -> None:
        self._scaler.low = float(state["scaler_low"])
        self._scaler.span = float(state["scaler_span"])
        self._loss_history = [
            float(v) for v in np.asarray(state["loss_history"], dtype=float)
        ]
        network_state = state["network"]
        if network_state is None:
            self._network = None
        else:
            # Construction draws init weights from a throwaway generator;
            # every parameter is then overwritten with the checkpointed
            # values, and the real RNG stream is restored below.
            network = StackedLSTMNetwork(
                input_dim=1, hidden_dim=self.hidden_dim, output_dim=1,
                rng=np.random.default_rng(0),
            )
            for layer, params in zip(network.layers, network_state):
                for name, array in layer.parameters.items():
                    array[...] = params[name]
            self._network = network
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng"]
        self._rng = rng

    def _fit(self, series: np.ndarray) -> None:
        if series.size <= self.lookback:
            raise DataError(
                f"series of length {series.size} too short for lookback "
                f"{self.lookback}"
            )
        self._scaler.fit(series)
        scaled = self._scaler.transform(series)
        windows, targets = build_windows(scaled, self.lookback)
        network = StackedLSTMNetwork(
            input_dim=1, hidden_dim=self.hidden_dim, output_dim=1,
            rng=self._rng,
        )
        optimizer = Adam(network.layers, learning_rate=self.learning_rate)
        count = windows.shape[0]
        self._loss_history = []
        for _ in range(self.epochs):
            order = self._rng.permutation(count)
            epoch_losses = []
            for start in range(0, count, self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                loss = network.loss_and_gradient(
                    windows[batch_idx], targets[batch_idx]
                )
                clip_gradients(network.layers, self.clip_norm)
                optimizer.step()
                epoch_losses.append(loss)
            self._loss_history.append(float(np.mean(epoch_losses)))
        self._network = network

    def _forecast(self, horizon: int) -> np.ndarray:
        if self._network is None:
            raise DataError("internal error: network missing after fit")
        history = self.history
        if history.size < self.lookback:
            raise DataError(
                f"need at least {self.lookback} observations to forecast"
            )
        window = self._scaler.transform(history[-self.lookback :]).tolist()
        outputs = np.empty(horizon)
        for h in range(horizon):
            batch = np.asarray(window[-self.lookback :], dtype=float)
            prediction = self._network.predict(
                batch.reshape(1, self.lookback, 1)
            )[0, 0]
            window.append(float(prediction))
            outputs[h] = prediction
        return self._scaler.inverse(outputs)


@register_forecaster("lstm")
def _build_lstm(config, cluster: int, group: int) -> LstmForecaster:
    seed = None
    if config.seed is not None:
        # Distinct but reproducible per (cluster, group).
        seed = config.seed + 1009 * cluster + 9176 * group
    return LstmForecaster(
        hidden_dim=config.lstm_hidden,
        lookback=config.lstm_lookback,
        epochs=config.lstm_epochs,
        seed=seed,
    )
