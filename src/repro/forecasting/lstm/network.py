"""The paper's forecasting network: two stacked LSTMs + ReLU dense head.

Sec. VI-A3: "we stacked two LSTM layers, and on top of that we stacked a
dense layer with a rectified linear unit (ReLU) as activation function."
The network maps an input window of ``lookback`` past values to a scalar
one-step-ahead prediction; multi-step forecasts are produced recursively.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import DataError
from repro.forecasting.lstm.layers import DenseLayer, Layer, LSTMLayer


class StackedLSTMNetwork:
    """Two stacked LSTM layers followed by a ReLU dense output layer.

    Args:
        input_dim: Features per time step (1 for univariate centroids).
        hidden_dim: Hidden units in each LSTM layer.
        output_dim: Output dimension (1 for scalar forecasts).
        rng: Generator for weight initialization (reproducibility).
    """

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 32,
        output_dim: int = 1,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng()
        self.lstm1 = LSTMLayer(input_dim, hidden_dim, rng=rng)
        self.lstm2 = LSTMLayer(hidden_dim, hidden_dim, rng=rng)
        # Targets are min-max scaled into [0, 1]; a 0.5 bias starts the
        # ReLU head at the centre of that range and alive (see DenseLayer).
        self.head = DenseLayer(
            hidden_dim, output_dim, activation="relu", bias_init=0.5, rng=rng
        )
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.output_dim = output_dim

    @property
    def layers(self) -> List[Layer]:
        return [self.lstm1, self.lstm2, self.head]

    def forward(self, windows: np.ndarray) -> np.ndarray:
        """Predict from input windows.

        Args:
            windows: Shape ``(batch, lookback, input_dim)``.

        Returns:
            Predictions of shape ``(batch, output_dim)``.
        """
        x = np.asarray(windows, dtype=float)
        if x.ndim != 3:
            raise DataError(f"windows must be 3-D, got shape {x.shape}")
        h1 = self.lstm1.forward(x)
        h2 = self.lstm2.forward(h1)
        return self.head.forward(h2[:, -1, :])

    def backward(self, grad_predictions: np.ndarray) -> None:
        """Backpropagate gradients of the loss w.r.t. the predictions."""
        grad_last = self.head.backward(grad_predictions)
        batch = grad_last.shape[0]
        steps = self.lstm2._cache["x"].shape[1] if self.lstm2._cache else 0
        if steps == 0:
            raise DataError("backward called before forward")
        grad_h2 = np.zeros((batch, steps, self.hidden_dim))
        grad_h2[:, -1, :] = grad_last
        grad_h1 = self.lstm2.backward(grad_h2)
        self.lstm1.backward(grad_h1)

    def loss_and_gradient(
        self, windows: np.ndarray, targets: np.ndarray
    ) -> float:
        """One forward/backward pass with MSE loss.

        Args:
            windows: Shape ``(batch, lookback, input_dim)``.
            targets: Shape ``(batch, output_dim)`` (or ``(batch,)``).

        Returns:
            The mean-squared-error loss; layer gradients are left ready
            for an optimizer step.
        """
        y = np.asarray(targets, dtype=float)
        if y.ndim == 1:
            y = y[:, np.newaxis]
        predictions = self.forward(windows)
        if predictions.shape != y.shape:
            raise DataError(
                f"targets shape {y.shape} != predictions {predictions.shape}"
            )
        batch = y.shape[0]
        error = predictions - y
        loss = float(np.mean(error**2))
        self.backward(2.0 * error / error.size)
        return loss

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Forward pass without caching intent (alias of :meth:`forward`)."""
        return self.forward(windows)
