"""Seasonal ARIMA forecasting, implemented from scratch.

``ArimaModel`` fits a fixed SARIMA order by conditional sum of squares;
``grid_search``/``AutoArima`` select the order by AICc as in the paper.
"""

from repro.forecasting.arima.grid_search import (
    AutoArima,
    GridSearchResult,
    candidate_orders,
    grid_search,
)
from repro.forecasting.arima.model import ArimaModel, ArimaOrder

__all__ = [
    "ArimaModel",
    "ArimaOrder",
    "AutoArima",
    "GridSearchResult",
    "candidate_orders",
    "grid_search",
]
