"""Seasonal ARIMA implemented from scratch (Sec. VI-A3).

The model is SARIMA(p, d, q)(P, D, Q)_s fitted by conditional sum of
squares (CSS): the seasonal and non-seasonal AR/MA lag polynomials are
multiplied out, residuals are computed by filtering the (differenced,
mean-adjusted) series through the ARMA recursion with zero initial
conditions (``scipy.signal.lfilter`` does this at C speed), and the
squared-residual sum is minimized with L-BFGS-B.  Forecasting iterates
the ARMA recursion forward with future innovations set to zero, then
integrates the differencing back with the exact polynomial recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import optimize, signal

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.forecasting.base import Forecaster
from repro.forecasting.stattools import aicc, difference, undifference_forecasts

#: Penalty SSE returned for numerically unstable (non-invertible /
#: explosive) parameter points so the optimizer steers away from them.
_UNSTABLE_SSE = 1e12


@dataclass(frozen=True)
class ArimaOrder:
    """A SARIMA model order ``(p, d, q)(P, D, Q)_s``."""

    p: int = 1
    d: int = 0
    q: int = 0
    P: int = 0
    D: int = 0
    Q: int = 0
    s: int = 0

    def __post_init__(self) -> None:
        for name in ("p", "d", "q", "P", "D", "Q", "s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if (self.P or self.D or self.Q) and self.s < 2:
            raise ConfigurationError(
                "seasonal terms require a seasonal period s >= 2"
            )

    @property
    def num_coefficients(self) -> int:
        """AR/MA coefficients, excluding mean and innovation variance."""
        return self.p + self.q + self.P + self.Q

    @property
    def num_parameters(self) -> int:
        """Parameters counted by the AICc (coefficients + mean + sigma²)."""
        return self.num_coefficients + 2

    @property
    def differencing_lag(self) -> int:
        return self.d + self.D * self.s

    def __str__(self) -> str:
        base = f"ARIMA({self.p},{self.d},{self.q})"
        if self.s >= 2:
            base += f"({self.P},{self.D},{self.Q})[{self.s}]"
        return base


def _expand_polynomials(
    order: ArimaOrder, params: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Multiply seasonal and non-seasonal polynomials.

    Parameter layout: ``[phi(1..p), theta(1..q), Phi(1..P), Theta(1..Q)]``.

    Returns:
        ``(ar_full, ma_full)`` — coefficients of ``φ(B)Φ(B^s)`` and
        ``θ(B)Θ(B^s)`` in increasing powers of B, both with leading 1.
        Sign convention: ``φ(B) = 1 − φ₁B − …``, ``θ(B) = 1 + θ₁B + …``.
    """
    p, q, P, Q, s = order.p, order.q, order.P, order.Q, order.s
    phi = params[:p]
    theta = params[p : p + q]
    sphi = params[p + q : p + q + P]
    stheta = params[p + q + P : p + q + P + Q]

    ar = np.concatenate(([1.0], -phi))
    ma = np.concatenate(([1.0], theta))
    if P > 0:
        sar = np.zeros(P * s + 1)
        sar[0] = 1.0
        for i in range(1, P + 1):
            sar[i * s] = -sphi[i - 1]
        ar = np.convolve(ar, sar)
    if Q > 0:
        sma = np.zeros(Q * s + 1)
        sma[0] = 1.0
        for i in range(1, Q + 1):
            sma[i * s] = stheta[i - 1]
        ma = np.convolve(ma, sma)
    return ar, ma


def _is_stable(poly: np.ndarray, margin: float = 1e-3) -> bool:
    """Check that all roots of the lag polynomial lie outside the unit circle.

    ``poly`` holds coefficients in increasing powers of B.  Substituting
    ``z = 1/B`` and multiplying by ``z^m`` yields the polynomial whose
    ``np.roots`` coefficient vector (highest degree first) is exactly
    ``poly``; stability requires all its roots strictly inside the unit
    circle.
    """
    if poly.size <= 1:
        return True
    roots = np.roots(poly)
    if roots.size == 0:
        return True
    return bool(np.max(np.abs(roots)) < 1.0 - margin)


class ArimaModel(Forecaster):
    """CSS-fitted seasonal ARIMA forecaster.

    Args:
        order: The SARIMA order.
        enforce_stability: Reject parameter points whose AR or MA
            polynomial has roots on/inside the unit circle during
            optimization (recommended; keeps filtering and multi-step
            forecasts bounded).
    """

    def __init__(
        self, order: ArimaOrder = ArimaOrder(), *, enforce_stability: bool = True
    ) -> None:
        super().__init__()
        self.order = order
        self.enforce_stability = enforce_stability
        self._params: Optional[np.ndarray] = None
        self._mean = 0.0
        self._sse = float("nan")
        self._num_effective = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _css_residuals(
        self, params: np.ndarray, centered: np.ndarray
    ) -> Optional[np.ndarray]:
        """Residuals of the ARMA recursion with zero initial conditions.

        Returns None when the parameter point is unstable and stability is
        enforced.
        """
        ar, ma = _expand_polynomials(self.order, params)
        if self.enforce_stability and not (
            _is_stable(ar) and _is_stable(ma)
        ):
            return None
        # φ(B) ỹ = θ(B) e  ⇔  e = (φ/θ)(B) ỹ; lfilter(b=ar, a=ma) applies
        # exactly this rational filter with zero initial conditions.
        residuals = signal.lfilter(ar, ma, centered)
        if not np.isfinite(residuals).all():
            return None
        return residuals

    def _objective(self, params_and_mean: np.ndarray, w: np.ndarray) -> float:
        mean = params_and_mean[-1]
        params = params_and_mean[:-1]
        residuals = self._css_residuals(params, w - mean)
        if residuals is None:
            return _UNSTABLE_SSE
        burn = self._burn_in()
        sse = float(np.dot(residuals[burn:], residuals[burn:]))
        return min(sse, _UNSTABLE_SSE)

    def _burn_in(self) -> int:
        """Observations dropped from the CSS sum (AR warm-up)."""
        return self.order.p + self.order.P * self.order.s

    def _fit(self, series: np.ndarray) -> None:
        order = self.order
        min_len = order.differencing_lag + self._burn_in() + max(
            order.num_coefficients + 2, 4
        )
        if series.size < min_len:
            raise DataError(
                f"series of length {series.size} too short to fit {order} "
                f"(needs >= {min_len})"
            )
        w = difference(series, order.d, order.D, order.s)
        n_coeff = order.num_coefficients
        initial = np.zeros(n_coeff + 1)
        initial[-1] = float(w.mean())
        if n_coeff == 0:
            self._params = np.empty(0)
            self._mean = float(w.mean())
            centered = w - self._mean
            burn = self._burn_in()
            self._sse = float(np.dot(centered[burn:], centered[burn:]))
            self._num_effective = w.size - burn
            return
        bounds = [(-0.98, 0.98)] * n_coeff + [(None, None)]
        result = optimize.minimize(
            self._objective,
            initial,
            args=(w,),
            method="L-BFGS-B",
            bounds=bounds,
        )
        best = result.x
        # A zero start can sit on a flat spot for pure-MA models; retry from
        # a small perturbation if the optimizer went nowhere.
        if not result.success or result.fun >= _UNSTABLE_SSE:
            alt = initial.copy()
            alt[:n_coeff] = 0.1
            retry = optimize.minimize(
                self._objective,
                alt,
                args=(w,),
                method="L-BFGS-B",
                bounds=bounds,
            )
            if retry.fun < result.fun:
                best = retry.x
        self._params = best[:-1]
        self._mean = float(best[-1])
        residuals = self._css_residuals(self._params, w - self._mean)
        burn = self._burn_in()
        if residuals is None:
            # Stability rejection at the optimum should not happen, but
            # never leave the model half-fitted.
            centered = w - self._mean
            self._sse = float(np.dot(centered[burn:], centered[burn:]))
        else:
            self._sse = float(np.dot(residuals[burn:], residuals[burn:]))
        self._num_effective = w.size - burn

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------

    def _forecast(self, horizon: int) -> np.ndarray:
        if self._params is None and self.order.num_coefficients > 0:
            raise NotFittedError("ArimaModel parameters missing")
        order = self.order
        series = self.history
        if series.size <= order.differencing_lag:
            raise DataError("not enough history to forecast")
        w = difference(series, order.d, order.D, order.s)
        centered = w - self._mean
        params = self._params if self._params is not None else np.empty(0)
        ar, ma = _expand_polynomials(order, params)
        residuals = signal.lfilter(ar, ma, centered)
        if not np.isfinite(residuals).all():
            residuals = np.zeros_like(centered)

        ar_lags = ar.size - 1
        ma_lags = ma.size - 1
        y_ext = list(centered)
        e_ext = list(residuals)
        forecasts = np.empty(horizon)
        for h in range(horizon):
            value = 0.0
            for i in range(1, ar_lags + 1):
                if ar[i] != 0.0 and len(y_ext) - i >= 0:
                    value -= ar[i] * y_ext[-i]
            for j in range(1, ma_lags + 1):
                # Future innovations are zero; only innovations at or
                # before time t contribute.
                idx = len(e_ext) - j
                if ma[j] != 0.0 and 0 <= idx < residuals.size:
                    value += ma[j] * e_ext[idx]
            y_ext.append(value)
            e_ext.append(0.0)
            forecasts[h] = value + self._mean
        return undifference_forecasts(
            series, forecasts, order.d, order.D, order.s
        )

    def psi_weights(self, count: int) -> np.ndarray:
        """Impulse-response (ψ) weights of the fitted ARIMA process.

        The integrated process satisfies ``φ(B)Φ(B^s)(1−B)^d(1−B^s)^D x_t
        = θ(B)Θ(B^s) e_t``; its MA(∞) representation ``x_t = Σ ψ_i
        e_{t−i}`` is obtained by filtering a unit impulse through the
        rational transfer function.  Used for forecast-variance bands.
        """
        if not self.is_fitted:
            raise NotFittedError("model not fitted")
        if count < 1:
            raise DataError(f"count must be >= 1, got {count}")
        from repro.forecasting.stattools import differencing_polynomial

        params = self._params if self._params is not None else np.empty(0)
        ar, ma = _expand_polynomials(self.order, params)
        diff = differencing_polynomial(
            self.order.d, self.order.D, self.order.s
        )
        denominator = np.convolve(ar, diff)
        impulse = np.zeros(count)
        impulse[0] = 1.0
        return signal.lfilter(ma, denominator, impulse)

    def forecast_interval(
        self, horizon: int, *, confidence: float = 0.95
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Point forecasts with Gaussian prediction intervals.

        Args:
            horizon: Steps ahead.
            confidence: Two-sided coverage in (0, 1).

        Returns:
            ``(forecast, lower, upper)`` arrays of shape ``(horizon,)``.
            The h-step forecast variance is ``σ̂²·Σ_{i<h} ψ_i²``.
        """
        if not 0.0 < confidence < 1.0:
            raise DataError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        point = self.forecast(horizon)
        psi = self.psi_weights(horizon)
        variances = self.sigma2 * np.cumsum(psi**2)
        from scipy.stats import norm

        z_value = float(norm.ppf(0.5 + confidence / 2.0))
        half_width = z_value * np.sqrt(np.maximum(variances, 0.0))
        return point, point - half_width, point + half_width

    # ------------------------------------------------------------------
    # Checkpoint state contract
    # ------------------------------------------------------------------

    def _state(self) -> dict:
        return {
            "params": None if self._params is None else self._params.copy(),
            "model_mean": self._mean,
            "sse": self._sse,
            "num_effective": self._num_effective,
        }

    def _load_state(self, state: dict) -> None:
        params = state["params"]
        self._params = (
            None if params is None else np.asarray(params, dtype=float)
        )
        self._mean = float(state["model_mean"])
        self._sse = float(state["sse"])
        self._num_effective = int(state["num_effective"])

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @property
    def sse(self) -> float:
        """Conditional sum of squared residuals at the optimum."""
        if not self.is_fitted:
            raise NotFittedError("model not fitted")
        return self._sse

    @property
    def sigma2(self) -> float:
        """Innovation-variance estimate ``SSE / n_effective``."""
        if not self.is_fitted:
            raise NotFittedError("model not fitted")
        if self._num_effective <= 0:
            return float("nan")
        return self._sse / self._num_effective

    @property
    def aicc(self) -> float:
        """Corrected Akaike information criterion of the fit."""
        if not self.is_fitted:
            raise NotFittedError("model not fitted")
        if self._num_effective <= 0:
            return float("inf")
        return aicc(self._sse, self._num_effective, self.order.num_parameters)

    @property
    def params(self) -> np.ndarray:
        """Fitted AR/MA coefficients (layout: φ, θ, Φ, Θ)."""
        if not self.is_fitted:
            raise NotFittedError("model not fitted")
        return np.asarray(self._params if self._params is not None else [])

    @property
    def mean(self) -> float:
        """Fitted mean of the differenced series."""
        if not self.is_fitted:
            raise NotFittedError("model not fitted")
        return self._mean
