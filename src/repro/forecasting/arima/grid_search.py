"""AICc grid search over SARIMA orders (Sec. VI-A3).

The paper selects the ARIMA order by fitting every combination in
``p ∈ [0,5], d ∈ [0,2], q ∈ [0,5]`` (and seasonal ``P ∈ [0,2], D ∈ [0,1],
Q ∈ [0,2]``) and keeping the model with the lowest corrected Akaike
information criterion.  Orders that cannot be fitted (series too short,
optimizer failure) are skipped rather than failing the search.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataError, ReproError
from repro.forecasting.arima.model import ArimaModel, ArimaOrder
from repro.registry import register_forecaster

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of an order search.

    Attributes:
        best_order: Order with the lowest criterion.
        best_model: The fitted winning model.
        scores: Every ``(order, aicc)`` pair evaluated, in search order.
    """

    best_order: ArimaOrder
    best_model: ArimaModel
    scores: Tuple[Tuple[ArimaOrder, float], ...]


def candidate_orders(
    max_p: int = 5,
    max_d: int = 2,
    max_q: int = 5,
    max_P: int = 2,
    max_D: int = 1,
    max_Q: int = 2,
    seasonal_period: int = 0,
) -> List[ArimaOrder]:
    """Enumerate the paper's grid of SARIMA orders.

    When ``seasonal_period < 2`` the seasonal dimensions collapse to zero,
    so the grid is the plain ARIMA one.
    """
    if seasonal_period >= 2:
        seasonal = itertools.product(
            range(max_P + 1), range(max_D + 1), range(max_Q + 1)
        )
        seasonal = list(seasonal)
    else:
        seasonal = [(0, 0, 0)]
    orders = []
    for p, d, q in itertools.product(
        range(max_p + 1), range(max_d + 1), range(max_q + 1)
    ):
        for P, D, Q in seasonal:
            orders.append(
                ArimaOrder(
                    p=p, d=d, q=q, P=P, D=D, Q=Q,
                    s=seasonal_period if seasonal_period >= 2 else 0,
                )
            )
    return orders


def grid_search(
    series: Sequence[float],
    orders: Optional[Iterable[ArimaOrder]] = None,
    *,
    max_p: int = 5,
    max_d: int = 2,
    max_q: int = 5,
    max_P: int = 2,
    max_D: int = 1,
    max_Q: int = 2,
    seasonal_period: int = 0,
) -> GridSearchResult:
    """Fit all candidate orders and return the AICc winner.

    Args:
        series: Training series.
        orders: Explicit candidate list; when omitted the grid defined by
            the ``max_*`` bounds is used.

    Raises:
        ReproError: If no candidate order could be fitted at all.
    """
    values = np.asarray(list(series), dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise DataError("series must be a non-empty 1-D sequence")
    if orders is None:
        orders = candidate_orders(
            max_p, max_d, max_q, max_P, max_D, max_Q, seasonal_period
        )
    orders = list(orders)
    if not orders:
        raise ConfigurationError("candidate order list is empty")

    scores: List[Tuple[ArimaOrder, float]] = []
    best_model: Optional[ArimaModel] = None
    best_score = float("inf")
    for order in orders:
        try:
            model = ArimaModel(order)
            model.fit(values)
            score = model.aicc
        except ReproError as exc:
            logger.debug("skipping %s: %s", order, exc)
            scores.append((order, float("inf")))
            continue
        scores.append((order, score))
        if score < best_score:
            best_score = score
            best_model = model
    if best_model is None:
        raise ReproError(
            "no candidate ARIMA order could be fitted on the given series"
        )
    return GridSearchResult(
        best_order=best_model.order,
        best_model=best_model,
        scores=tuple(scores),
    )


class AutoArima:
    """A :class:`~repro.forecasting.base.Forecaster`-compatible wrapper
    that re-runs the order search at every (re)fit.

    Args:
        max_p, max_d, max_q, max_P, max_D, max_Q: Grid bounds.
        seasonal_period: Season length ``s``; < 2 disables seasonality.
    """

    def __init__(
        self,
        *,
        max_p: int = 2,
        max_d: int = 1,
        max_q: int = 2,
        max_P: int = 0,
        max_D: int = 0,
        max_Q: int = 0,
        seasonal_period: int = 0,
    ) -> None:
        self.bounds = dict(
            max_p=max_p, max_d=max_d, max_q=max_q,
            max_P=max_P, max_D=max_D, max_Q=max_Q,
            seasonal_period=seasonal_period,
        )
        self._model: Optional[ArimaModel] = None

    @property
    def is_fitted(self) -> bool:
        return self._model is not None and self._model.is_fitted

    @property
    def model(self) -> ArimaModel:
        if self._model is None:
            raise ReproError("AutoArima.fit has not been called")
        return self._model

    @property
    def history(self) -> np.ndarray:
        return self.model.history

    def fit(self, series: Sequence[float]) -> "AutoArima":
        result = grid_search(series, **self.bounds)
        self._model = result.best_model
        return self

    def update(self, value: float) -> None:
        self.model.update(value)

    def forecast(self, horizon: int) -> np.ndarray:
        return self.model.forecast(horizon)

    # -- checkpoint state contract --------------------------------------

    def get_state(self) -> dict:
        """Checkpoint state: the selected order plus the fitted model.

        Restoring skips the grid search entirely — the winning
        :class:`ArimaModel` is rebuilt at its recorded order and its
        fitted parameters are loaded directly.
        """
        if self._model is None:
            return {"order": None, "model": None}
        order = self._model.order
        return {
            "order": [
                order.p, order.d, order.q, order.P, order.D, order.Q,
                order.s,
            ],
            "enforce_stability": self._model.enforce_stability,
            "model": self._model.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`get_state`."""
        if state["model"] is None:
            self._model = None
            return
        order = ArimaOrder(*(int(v) for v in state["order"]))
        model = ArimaModel(
            order, enforce_stability=bool(state["enforce_stability"])
        )
        model.set_state(state["model"])
        self._model = model


@register_forecaster("arima")
def _build_arima(config, cluster: int, group: int) -> AutoArima:
    return AutoArima(
        max_p=config.arima_max_p,
        max_d=config.arima_max_d,
        max_q=config.arima_max_q,
        max_P=config.arima_max_P,
        max_D=config.arima_max_D,
        max_Q=config.arima_max_Q,
        seasonal_period=config.arima_seasonal_period,
    )
