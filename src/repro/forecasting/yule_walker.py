"""AR(p) fitting via the Yule–Walker equations.

A fast, closed-form alternative to CSS optimization for pure
autoregressive models: the AR coefficients solve the Toeplitz system
``R φ = r`` built from sample autocorrelations.  Useful when the
controller retrains thousands of per-cluster models and the optimizer
cost of full ARIMA matters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import solve_toeplitz

from repro.exceptions import ConfigurationError, DataError
from repro.forecasting.base import Forecaster
from repro.forecasting.stattools import acf
from repro.registry import register_forecaster


def fit_yule_walker(series: np.ndarray, order: int) -> np.ndarray:
    """Solve the Yule–Walker equations for AR coefficients.

    Args:
        series: 1-D observations.
        order: AR order p >= 1.

    Returns:
        Coefficients ``φ_1..φ_p`` of ``y_t = μ + Σ φ_i (y_{t−i} − μ)``.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {x.shape}")
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")
    if x.size <= order + 1:
        raise DataError(
            f"series of length {x.size} too short for AR({order})"
        )
    rho = acf(x, order)
    if np.allclose(rho[1:], 0.0) and rho[0] == 1.0 and x.std() == 0.0:
        return np.zeros(order)
    # Toeplitz system: first column/row are rho[0..p-1].
    column = rho[:order]
    rhs = rho[1 : order + 1]
    try:
        return solve_toeplitz((column, column), rhs)
    except np.linalg.LinAlgError:
        return np.zeros(order)


class YuleWalkerAR(Forecaster):
    """AR(p) forecaster fitted by Yule–Walker.

    Args:
        order: AR order p.
    """

    def __init__(self, order: int = 2) -> None:
        super().__init__()
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        self.order = order
        self._coefficients = np.zeros(order)
        self._mean = 0.0

    @property
    def coefficients(self) -> np.ndarray:
        return self._coefficients.copy()

    @property
    def mean(self) -> float:
        return self._mean

    def _fit(self, series: np.ndarray) -> None:
        self._mean = float(series.mean())
        self._coefficients = fit_yule_walker(series, self.order)

    def _forecast(self, horizon: int) -> np.ndarray:
        history = self.history
        if history.size < self.order:
            raise DataError(
                f"need at least {self.order} observations to forecast"
            )
        centered = list(history[-self.order :] - self._mean)
        out = np.empty(horizon)
        for h in range(horizon):
            value = float(
                np.dot(self._coefficients, centered[::-1][: self.order])
            )
            centered.append(value)
            centered.pop(0)
            out[h] = value + self._mean
        return out


@register_forecaster("ar")
def _build_ar(config, cluster: int, group: int) -> YuleWalkerAR:
    return YuleWalkerAR(order=config.ar_order)
