"""AR(p) fitting via the Yule–Walker equations.

A fast, closed-form alternative to CSS optimization for pure
autoregressive models: the AR coefficients solve the Toeplitz system
``R φ = r`` built from sample autocorrelations.  Useful when the
controller retrains thousands of per-cluster models and the optimizer
cost of full ARIMA matters.

The module exposes *batched* kernels — :func:`fit_yule_walker_batch`
and :func:`ar_forecast_batch` — that fit and forecast ``S`` independent
series at once.  :class:`YuleWalkerAR` and the :class:`~repro.
forecasting.bank.YuleWalkerBank` both run on these kernels, so a bank
over ``S = K·d`` series is bit-identical to a loop of ``S`` scalar
forecasters by construction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster


def _as_columns(series: np.ndarray) -> np.ndarray:
    """Validate a ``(T, S)`` batch and return it as contiguous ``(S, T)``.

    The transpose is copied to C order so per-row reductions (mean,
    dot-like sums) use the same contiguous inner loop as a standalone
    1-D array of the column — keeping a batch of S series bit-identical
    to S separate 1-D computations.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 2:
        raise DataError(f"series batch must be (T, S), got shape {x.shape}")
    return np.ascontiguousarray(x.T)


def fit_yule_walker_batch(series: np.ndarray, order: int) -> np.ndarray:
    """Solve the Yule–Walker equations for ``S`` series at once.

    Builds the sample autocorrelations of every column, stacks the
    ``S`` Toeplitz lag matrices and solves them in one batched
    ``np.linalg.solve`` call.

    Args:
        series: Observations, shape ``(T, S)`` — one series per column.
        order: AR order p >= 1.

    Returns:
        Coefficients ``φ_1..φ_p`` per series, shape ``(order, S)``.
        Constant columns and singular systems yield zero coefficients
        (the conventions of :func:`fit_yule_walker`).
    """
    cols = _as_columns(series)
    num_series, length = cols.shape
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")
    if length <= order + 1:
        raise DataError(
            f"series of length {length} too short for AR({order})"
        )
    centered = cols - cols.mean(axis=1)[:, np.newaxis]
    denom = (centered * centered).sum(axis=1)  # (S,)
    constant = denom == 0.0

    # Autocorrelations rho[0..order] per series; constant columns get
    # the conventional [1, 0, ..., 0] (never used — they are forced to
    # zero coefficients below — but keeps the solve well-posed).
    rho = np.empty((order + 1, num_series))
    safe_denom = np.where(constant, 1.0, denom)
    for lag in range(order + 1):
        num = (centered[:, : length - lag] * centered[:, lag:]).sum(axis=1)
        rho[lag] = num / safe_denom
    rho[0, constant] = 1.0
    rho[1:, constant] = 0.0

    # Stacked Toeplitz systems: mats[s, i, j] = rho[|i - j|, s].
    lag_index = np.abs(np.arange(order)[:, np.newaxis] - np.arange(order))
    mats = np.ascontiguousarray(rho[lag_index].transpose(2, 0, 1))
    rhs = np.ascontiguousarray(rho[1 : order + 1].T)
    try:
        coefficients = np.linalg.solve(mats, rhs[:, :, np.newaxis])[
            :, :, 0
        ].T  # (order, S)
    except np.linalg.LinAlgError:
        # At least one singular system: fall back to per-series solves
        # (identical arithmetic per system) and zero the singular ones.
        coefficients = np.zeros((order, num_series))
        # repro: noqa KER-003(cold-path fallback for singular systems, identical arithmetic)
        for s in range(num_series):
            try:
                coefficients[:, s] = np.linalg.solve(mats[s], rhs[s])
            except np.linalg.LinAlgError:
                pass
    coefficients[:, constant] = 0.0
    return coefficients


def ar_forecast_batch(
    coefficients: np.ndarray,
    mean: np.ndarray,
    history: np.ndarray,
    horizon: int,
) -> np.ndarray:
    """Iterate the AR recurrence for ``S`` series at once.

    Args:
        coefficients: AR coefficients, shape ``(order, S)``.
        mean: Series means ``μ``, shape ``(S,)``.
        history: The last ``order`` observations per series, oldest
            first, shape ``(order, S)``.
        horizon: Steps ahead H >= 1.

    Returns:
        Forecasts, shape ``(H, S)``.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    mean = np.asarray(mean, dtype=float)
    order, num_series = coefficients.shape
    window = np.asarray(history, dtype=float) - mean
    if window.shape != (order, num_series):
        raise DataError(
            f"history must be ({order}, {num_series}), got {window.shape}"
        )
    window = window.copy()
    out = np.empty((horizon, num_series))
    for h in range(horizon):
        # Explicit accumulation over the (small) order keeps the
        # summation order independent of S, so batched forecasts match
        # per-series ones bitwise.
        value = np.zeros(num_series)
        for i in range(order):
            value += coefficients[i] * window[order - 1 - i]
        out[h] = value + mean
        window[:-1] = window[1:]
        window[-1] = value
    return out


def fit_yule_walker(series: np.ndarray, order: int) -> np.ndarray:
    """Solve the Yule–Walker equations for AR coefficients.

    Args:
        series: 1-D observations.
        order: AR order p >= 1.

    Returns:
        Coefficients ``φ_1..φ_p`` of ``y_t = μ + Σ φ_i (y_{t−i} − μ)``.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {x.shape}")
    return fit_yule_walker_batch(x[:, np.newaxis], order)[:, 0]


class YuleWalkerAR(Forecaster):
    """AR(p) forecaster fitted by Yule–Walker.

    Args:
        order: AR order p.
    """

    def __init__(self, order: int = 2) -> None:
        super().__init__()
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        self.order = order
        self._coefficients = np.zeros(order)
        self._mean = 0.0

    @property
    def coefficients(self) -> np.ndarray:
        return self._coefficients.copy()

    @property
    def mean(self) -> float:
        return self._mean

    def _fit(self, series: np.ndarray) -> None:
        self._mean = float(series.mean())
        self._coefficients = fit_yule_walker(series, self.order)

    def _forecast(self, horizon: int) -> np.ndarray:
        history = self.history
        if history.size < self.order:
            raise DataError(
                f"need at least {self.order} observations to forecast"
            )
        return ar_forecast_batch(
            self._coefficients[:, np.newaxis],
            np.asarray([self._mean]),
            history[-self.order :][:, np.newaxis],
            horizon,
        )[:, 0]

    def _state(self) -> dict:
        return {"coefficients": self._coefficients.copy(), "mean": self._mean}

    def _load_state(self, state: dict) -> None:
        self._coefficients = np.asarray(state["coefficients"], dtype=float)
        self._mean = float(state["mean"])


@register_forecaster("ar")
def _build_ar(config, cluster: int, group: int) -> YuleWalkerAR:
    return YuleWalkerAR(order=config.ar_order)
