"""Stateful serving sessions: the first-class streaming surface.

A :class:`StreamSession` is one long-lived deployment of the paper's
system: it owns the live state — the columnar
:class:`~repro.simulation.fleet.FleetState`, the transport
:class:`~repro.simulation.transport.Channel`, the bounded
:class:`~repro.core.ring.SlotRing` histories, the per-group
:class:`~repro.clustering.dynamic.DynamicClusterTracker` and
:class:`~repro.forecasting.bank.ForecasterBank` instances — and exposes
the serving API:

* :meth:`StreamSession.ingest` — one time slot of measurements, **full
  or partial**: a subset of ``node_ids`` may report (absent nodes keep
  their stored values under the staleness rule), and late arrivals for
  already-closed slots are applied or dropped under a bounded reorder
  window with explicit counters;
* :meth:`StreamSession.forecast` — the current multi-horizon per-node
  forecasts, on demand;
* :meth:`StreamSession.snapshot` — a versioned, portable
  :class:`~repro.checkpoint.Checkpoint` from which
  :meth:`repro.api.Engine.resume` reconstructs a session that continues
  **bit-identically** to one that never stopped.

The per-slot hot path is vectorized: for every registered transmission
policy the whole fleet's decisions are one batched slot-kernel call
(:data:`repro.registry.SLOT_KERNELS`) over the fleet columns — the same
kernels the batch collection backends iterate — so a session slot costs
array operations, not ``N`` Python method calls.  Sessions built with a
custom ``policy_factory`` fall back to the faithful per-node object
loop, which is bit-identical by construction (the kernels are pinned to
it by property tests).

Partial-slot and late-arrival semantics (documented contract):

* A frontier ``ingest(values, node_ids)`` call closes exactly one slot.
  Only the named nodes run their transmission policy (their clocks and
  policy state advance); absent nodes stay silent, and the central
  store keeps their last received value — the paper's staleness rule.
  Clustering and forecasting always see the full ``(N, d)`` store.
* A call with ``t < session.time`` is a **late arrival** for a closed
  slot.  If the slot is older than ``reorder_window``, all its values
  are dropped (``late_dropped``).  Otherwise each value is applied iff
  the store has received nothing newer for that node
  (``last_update < t``): applied values update the store and transport
  counters (``late_applied``) and are seen by the *next* frontier slot;
  superseded values are dropped.  Late data never re-runs transmission
  policies and never re-opens closed clustering slots.
* ``t > session.time`` is an error — slots close in order.

Two orthogonal extensions ride on that contract (the scenario engine,
:mod:`repro.scenarios`, composes both):

* **Link models** — an optional ``link`` (see
  :mod:`repro.scenarios.links`) sits between the transmission decision
  and the channel.  Policies still run for every reporting node (their
  clocks and policy state advance on the *decision*), but only the
  messages the link delivers within the slot reach the store and the
  transport counters; lost messages leave the previous stored value in
  place (the node retries per its policy — an unobserved node's forced
  first transmission simply happens again), and delayed messages
  mature inside the link until the driver re-ingests them as late
  arrivals (``ingest(values, ids, t=origin_slot)``) through the
  contract above.  No link (or the ideal link) is bit-identical to the
  plain path.
* **Fleet churn** — :meth:`StreamSession.grow` /
  :meth:`StreamSession.compact` resize the fleet between slots
  (columns reallocate; the channel's counter column is re-adopted with
  retired-message accounting, the pipeline's bounded node-aligned
  histories are remapped, cluster-level model state is untouched), and
  :meth:`StreamSession.restart_nodes` injects crash-restart failures
  (policy state reset, forced retransmission, identity kept).
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro.checkpoint import CHECKPOINT_FORMAT_VERSION, Checkpoint
from repro.core.config import PipelineConfig
from repro.core.pipeline import (
    ForecasterFactory,
    OnlinePipeline,
    StepOutput,
)
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DataError,
    NotFittedError,
)
from repro.registry import SLOT_KERNELS, TRANSMISSION_POLICIES
from repro.simulation.controller import CentralStore
from repro.simulation.fleet import FleetState
from repro.simulation.node import LocalNode
from repro.simulation.transport import Channel, TransportStats
from repro.transmission.base import TransmissionPolicy

if TYPE_CHECKING:  # import cycle: scenarios builds on the session API
    from repro.scenarios.links import LinkModel

#: A per-node policy factory receives the node id.
PolicyFactory = Callable[[int], TransmissionPolicy]


class StreamSession:
    """A live, checkpointable streaming deployment of the pipeline.

    Built via :meth:`repro.api.Engine.session` (or
    :meth:`~repro.api.Engine.resume`); constructing directly is
    equivalent.

    Args:
        config: Full pipeline configuration.
        num_nodes: Fleet size ``N``.
        num_resources: Resource dimensionality ``d``.
        policy: Transmission-policy name (any entry of
            :data:`repro.registry.TRANSMISSION_POLICIES`).
        policy_factory: Custom per-node policy factory; forces the
            object-loop slot path (custom policies have no vectorized
            kernel).
        forecaster_factory: Optional forecasting-model override,
            forwarded to the pipeline's banks.
        reorder_window: How many already-closed slots a late arrival
            may lag behind the frontier and still be applied; 0 (the
            default) drops all late data.
        vectorized: Force the slot path: True requires a registered
            slot kernel for ``policy``, False forces the per-node
            object loop, None (default) picks the kernel when one
            exists.
        link: Optional link model (see :mod:`repro.scenarios.links`)
            interposed between transmission decisions and the channel;
            None (default) is the plain lossless path.
    """

    def __init__(
        self,
        config: PipelineConfig,
        num_nodes: int,
        num_resources: int,
        *,
        policy: str = "adaptive",
        policy_factory: Optional[PolicyFactory] = None,
        forecaster_factory: Optional[ForecasterFactory] = None,
        reorder_window: int = 0,
        vectorized: Optional[bool] = None,
        link: Optional["LinkModel"] = None,
    ) -> None:
        if num_nodes < 1 or num_resources < 1:
            raise ConfigurationError(
                "num_nodes and num_resources must be >= 1"
            )
        if reorder_window < 0:
            raise ConfigurationError(
                f"reorder_window must be >= 0, got {reorder_window}"
            )
        self.config = config
        self.num_nodes = int(num_nodes)
        self.num_resources = int(num_resources)
        self.reorder_window = int(reorder_window)
        self._custom_policy_factory = policy_factory is not None
        self._custom_forecaster_factory = forecaster_factory is not None
        if policy_factory is None:
            self.policy = policy
            builder = TRANSMISSION_POLICIES.get(policy)

            def policy_factory(node_id: int) -> TransmissionPolicy:
                return builder(config.transmission, node_id)

            kernel = (
                SLOT_KERNELS.create(policy, config.transmission)
                if policy in SLOT_KERNELS else None
            )
        else:
            self.policy = None
            kernel = None
        self._policy_factory: PolicyFactory = policy_factory
        if vectorized is None:
            vectorized = kernel is not None
        if vectorized and kernel is None:
            raise ConfigurationError(
                "vectorized sessions need a registered slot kernel for "
                f"the policy; {self.policy!r} has none (available: "
                f"{', '.join(SLOT_KERNELS.available())}) — pass "
                "vectorized=False for the object loop"
            )
        self.vectorized = bool(vectorized)
        self._kernel = kernel if self.vectorized else None
        if link is not None and link.num_nodes != int(num_nodes):
            raise ConfigurationError(
                f"link models {link.num_nodes} nodes, session has "
                f"{num_nodes}"
            )
        self.link = link

        # Live state: one columnar fleet, the channel's counters backed
        # by its message_counts column, the store and pipeline as views
        # over the same memory.
        self.fleet = FleetState(
            self.num_nodes, self.num_resources, dtype=config.np_dtype
        )
        self.channel = Channel(node_counts=self.fleet.message_counts)
        self.store = CentralStore(fleet=self.fleet)
        self.pipeline = OnlinePipeline(
            self.num_nodes,
            self.num_resources,
            config,
            forecaster_factory=forecaster_factory,
        )
        self._nodes: Optional[List[LocalNode]] = None
        if not self.vectorized:
            self._materialize_nodes()
        self._time = 0
        self.late_applied = 0
        self.late_dropped = 0
        # Latest per-node forecasts {h: (N, d)} — the forecast() surface.
        # Checkpointed, so a resumed session answers forecast queries
        # immediately instead of waiting for the next ingest.
        self._forecasts: Optional[Dict[int, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def time(self) -> int:
        """Number of closed slots (the ingestion frontier)."""
        return self._time

    @property
    def transport_stats(self) -> TransportStats:
        """Cumulative message/byte counters of this session."""
        return self.channel.stats

    @property
    def empirical_frequency(self) -> float:
        """Fleet-average transmission frequency over closed slots."""
        if self._time == 0:
            return 0.0
        return self.channel.stats.messages / (self._time * self.num_nodes)

    @property
    def nodes(self) -> List[LocalNode]:
        """Per-node :class:`LocalNode` views over the fleet columns.

        In vectorized sessions these are materialized on first access
        for compatibility; their *policy objects* are construction-time
        artifacts whose internal counters do not advance (the
        authoritative policy state is the fleet's ``policy_state``
        column).  In object-loop sessions they are the live actors.
        """
        if self._nodes is None:
            self._materialize_nodes()
        return self._nodes

    def _materialize_nodes(self) -> None:
        self._nodes = [
            self.fleet.node_view(i, self._policy_factory(i))
            for i in range(self.num_nodes)
        ]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(
        self,
        values: np.ndarray,
        node_ids: Optional[Sequence[int]] = None,
        t: Optional[int] = None,
    ) -> Optional[StepOutput]:
        """Ingest one slot of measurements — full, partial, or late.

        Args:
            values: Fresh measurements, shape ``(n, d)`` (or ``(n,)``
                when d = 1), one row per reporting node.
            node_ids: The reporting nodes, aligned with ``values``
                rows.  None means a full slot (``n`` must equal N, row
                ``i`` is node ``i``).
            t: The slot the measurements belong to.  None or the
                current frontier closes a new slot; an earlier value is
                a late arrival (see the module docstring for the
                apply/drop contract).

        Returns:
            The slot's :class:`~repro.core.pipeline.StepOutput` (with
            per-slot transport delta and timings) for frontier calls;
            None for late arrivals, which close no slot.
        """
        started = _time.perf_counter()
        x = np.asarray(values, dtype=self.fleet.dtype)
        if x.ndim == 1:
            x = x[:, np.newaxis]
        if x.ndim != 2 or x.shape[1] != self.num_resources:
            raise DataError(
                f"values must be (n, {self.num_resources}), got "
                f"{np.asarray(values).shape}"
            )
        if not np.isfinite(x).all():
            raise DataError("values contain non-finite measurements")
        if node_ids is None:
            ids = None
            if x.shape[0] != self.num_nodes:
                raise DataError(
                    f"a full slot needs {self.num_nodes} rows, got "
                    f"{x.shape[0]} (pass node_ids for a partial slot)"
                )
        else:
            ids = np.asarray(node_ids, dtype=np.int64).ravel()
            if ids.shape[0] != x.shape[0]:
                raise DataError(
                    f"{ids.shape[0]} node_ids for {x.shape[0]} value rows"
                )
            if ids.size and (
                ids.min() < 0 or ids.max() >= self.num_nodes
            ):
                raise DataError(
                    f"node_ids outside [0, {self.num_nodes})"
                )
            if np.unique(ids).size != ids.size:
                raise DataError("node_ids contains duplicates")
        slot = self._time if t is None else int(t)
        if slot > self._time:
            raise DataError(
                f"slot {slot} is ahead of the frontier {self._time}; "
                "slots close in order"
            )
        if slot < self._time:
            self._ingest_late(x, ids, slot)
            return None
        return self._ingest_frontier(x, ids, started)

    def _ingest_frontier(
        self, x: np.ndarray, ids: Optional[np.ndarray], started: float
    ) -> StepOutput:
        """Close one slot at the frontier: transmit, store, cluster,
        train/update, forecast."""
        slot = self._time
        stage_before = dict(self.pipeline.stage_seconds)
        if self._kernel is not None:
            counts = self._transmit_vectorized(x, ids, slot)
        else:
            counts = self._transmit_objects(x, ids, slot)
        collection_seconds = _time.perf_counter() - started

        output = self.pipeline.step(self.fleet.stored.copy())
        self._time += 1
        self._forecasts = output.node_forecasts

        output.transport = TransportStats.from_node_counts(
            counts, self.num_resources
        )
        output.late_applied = self.late_applied
        output.late_dropped = self.late_dropped
        timings = {"collection": collection_seconds}
        for stage, seconds in self.pipeline.stage_seconds.items():
            timings[stage] = seconds - stage_before.get(stage, 0.0)
        timings["total"] = _time.perf_counter() - started
        output.timings = timings
        return output

    def _transmit_vectorized(
        self, x: np.ndarray, ids: Optional[np.ndarray], slot: int
    ) -> np.ndarray:
        """One batched slot-kernel call over the active nodes' columns.

        Returns this slot's per-node delivered-message counts ``(N,)``.
        """
        fleet = self.fleet
        if ids is None:
            # Full slot: operate on the columns directly (the kernel
            # mutates policy_state in place, no gather/scatter needed).
            transmit = self._kernel(
                x, fleet.stored, fleet.observed, fleet.policy_state,
                fleet.times,
            )
            fleet.times += 1
            sender_ids = np.flatnonzero(transmit)
        else:
            state = fleet.policy_state[ids]
            transmit = self._kernel(
                x, fleet.stored[ids], fleet.observed[ids], state,
                fleet.times[ids],
            )
            fleet.policy_state[ids] = state
            fleet.times[ids] += 1
            sender_ids = ids[transmit]
        payload = x[transmit]
        if self.link is not None:
            # The link decides which of this slot's messages arrive now;
            # the rest are lost (previous stored value stays) or mature
            # inside the link for later late-arrival ingestion.  The
            # decision already happened: clocks and policy state
            # advanced above for every sender regardless of delivery.
            kept = self.link.transfer(slot, sender_ids, payload)
            sender_ids = sender_ids[kept]
            payload = payload[kept]
        fleet.stored[sender_ids] = payload
        fleet.observed[sender_ids] = True
        fleet.last_update[sender_ids] = slot
        return self.channel.record_deliveries(
            sender_ids, self.num_nodes, self.num_resources
        )

    def _transmit_objects(
        self, x: np.ndarray, ids: Optional[np.ndarray], slot: int
    ) -> np.ndarray:
        """Faithful per-node object loop (custom/heterogeneous policies).

        Returns this slot's per-node delivered-message counts ``(N,)``.
        """
        nodes = self.nodes
        fleet = self.fleet
        id_list = (
            range(self.num_nodes) if ids is None else ids.tolist()
        )
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        linked = self.link is not None
        emitted = []  # (node id, pre-observe mirror state, message)
        for row, i in enumerate(id_list):
            before = None
            if linked:
                # observe() optimistically updates the node's mirror of
                # the central store; a link loss rolls that back (the
                # controller received nothing, and the node learns so
                # from the missing link-layer ack).
                before = (
                    bool(fleet.observed[i]),
                    int(fleet.last_update[i]),
                    fleet.stored[i].copy() if fleet.dim else None,
                )
            message = nodes[i].observe(x[row])
            if message is not None:
                emitted.append((i, before, message))
        if linked and emitted:
            sender_ids = np.array([e[0] for e in emitted], dtype=np.int64)
            payload = np.stack([e[2].value for e in emitted])
            kept = set(
                int(k)
                for k in np.asarray(
                    self.link.transfer(slot, sender_ids, payload)
                ).ravel()
            )
            delivered = []
            for pos, (i, before, message) in enumerate(emitted):
                if pos in kept:
                    delivered.append((i, None, message))
                    continue
                was_observed, was_last_update, was_stored = before
                fleet.observed[i] = was_observed
                fleet.last_update[i] = was_last_update
                if was_stored is not None:
                    fleet.stored[i] = was_stored
                elif fleet.dim:
                    fleet.stored[i] = 0.0
            emitted = delivered
        for i, _, message in emitted:
            self.channel.send(message)
            counts[i] = 1
        self.store.apply(self.channel.drain(), now=slot)
        return counts

    def _ingest_late(
        self, x: np.ndarray, ids: Optional[np.ndarray], slot: int
    ) -> None:
        """Apply or drop a late arrival for an already-closed slot."""
        if ids is None:
            ids = np.arange(self.num_nodes, dtype=np.int64)
        if self._time - slot > self.reorder_window:
            self.late_dropped += int(ids.size)
            return
        fleet = self.fleet
        fresh = fleet.last_update[ids] < slot
        apply_ids = ids[fresh]
        fleet.ensure_dim(self.num_resources)
        fleet.stored[apply_ids] = x[fresh]
        fleet.observed[apply_ids] = True
        fleet.last_update[apply_ids] = slot
        self.channel.record_deliveries(
            apply_ids, self.num_nodes, self.num_resources
        )
        self.late_applied += int(apply_ids.size)
        self.late_dropped += int(ids.size - apply_ids.size)

    # ------------------------------------------------------------------
    # Forecasts on demand
    # ------------------------------------------------------------------

    def forecast(
        self, horizons: Optional[Sequence[int]] = None
    ) -> Dict[int, np.ndarray]:
        """Current per-node forecasts ``{h: (N, d)}``.

        Available as soon as forecasting starts, including immediately
        after a resume (the latest forecasts travel in the checkpoint).

        Args:
            horizons: Horizons to return, each in ``1..max_horizon``;
                None returns every available horizon.

        Raises:
            NotFittedError: Before forecasting starts (no slot closed
                yet, or still inside the initial collection phase).
        """
        available = self._forecasts
        if available is None:
            raise NotFittedError(
                "no forecasts yet: the session is still in its initial "
                f"collection phase "
                f"({self.config.forecasting.initial_collection} slots)"
            )
        if horizons is None:
            return dict(available)
        selected = {}
        for h in horizons:
            if h not in available:
                raise DataError(
                    f"horizon {h} not available; forecasts cover "
                    f"1..{self.config.forecasting.max_horizon}"
                )
            selected[h] = available[h]
        return selected

    # ------------------------------------------------------------------
    # Fleet churn
    # ------------------------------------------------------------------

    def grow(self, count: int) -> np.ndarray:
        """Admit ``count`` new nodes between slots.

        Every column reallocates (:meth:`FleetState.grow
        <repro.simulation.fleet.FleetState.grow>`); the channel
        re-adopts the counter column, the store refreshes its cached
        geometry, the pipeline's node-aligned histories are remapped
        (new nodes backfilled), and the link model (if any) widens.
        New nodes start unobserved with their clocks at the session
        frontier, so their first report triggers the forced initial
        transmission exactly like a fresh fleet's.

        Returns:
            The new nodes' ids, ``old_n .. old_n + count - 1``.
        """
        old_n = self.num_nodes
        new_ids = self.fleet.grow(count, clock=self._time)
        self.num_nodes = self.fleet.num_nodes
        self.channel.stats.adopt_column(self.fleet.message_counts)
        self.store.num_nodes = self.fleet.num_nodes
        index_map = np.concatenate([
            np.arange(old_n, dtype=np.int64),
            np.full(int(count), -1, dtype=np.int64),
        ])
        self.pipeline.reindex_nodes(index_map)
        if self.link is not None:
            self.link.grow(count)
        if self.vectorized:
            self._nodes = None
        elif self._nodes is not None:
            for i in new_ids.tolist():
                self._nodes.append(
                    self.fleet.node_view(i, self._policy_factory(i))
                )
        return new_ids

    def compact(self, keep: Sequence[int]) -> None:
        """Remove departed nodes between slots, renumbering survivors.

        ``keep`` (strictly increasing old ids) become nodes ``0..k-1``
        in order.  Surviving nodes carry every column value across; the
        channel re-adopts the counter column (departed counts move to
        ``retired_messages``, cumulative totals unchanged), the
        pipeline's histories are gathered, and the link model drops the
        departed nodes' queued traffic as churn losses.
        """
        keep = np.asarray(keep, dtype=np.int64).ravel()
        self.fleet.compact(keep)
        self.num_nodes = self.fleet.num_nodes
        self.channel.stats.adopt_column(self.fleet.message_counts)
        self.store.num_nodes = self.fleet.num_nodes
        self.pipeline.reindex_nodes(keep)
        if self.link is not None:
            self.link.compact(keep)
        if self.vectorized:
            self._nodes = None
        elif self._nodes is not None:
            survivors = [self._nodes[int(i)] for i in keep.tolist()]
            for new_index, node in enumerate(survivors):
                node.rebind(new_index)
            self._nodes = survivors

    def restart_nodes(self, node_ids: Sequence[int]) -> None:
        """Crash-restart failure injection: nodes lose local state.

        The named nodes forget that they ever transmitted (``observed``
        cleared, policy state zeroed — object-loop sessions rebuild the
        policy objects), so their next report is a forced initial
        transmission.  The central store keeps their last received
        value (the controller does not know they crashed); the link
        drops their queued/in-flight traffic as churn losses.
        """
        ids = np.asarray(node_ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.num_nodes:
            raise DataError(f"node_ids outside [0, {self.num_nodes})")
        if np.unique(ids).size != ids.size:
            raise DataError("node_ids contains duplicates")
        self.fleet.observed[ids] = False
        self.fleet.policy_state[ids] = 0.0
        if self.link is not None:
            self.link.fail_nodes(ids)
        if self.vectorized:
            self._nodes = None
        elif self._nodes is not None:
            for i in ids.tolist():
                self._nodes[i] = self.fleet.node_view(
                    i, self._policy_factory(i)
                )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Checkpoint:
        """Capture the session as a versioned, portable checkpoint.

        Composes the ``get_state`` contracts of every owned component.
        Resuming the result (:meth:`repro.api.Engine.resume`) yields a
        session whose every future output — forecasts, cluster
        assignments, transport counters — is bit-identical to this one
        continuing uninterrupted.
        """
        if self.channel.pending:
            raise CheckpointError(
                f"{self.channel.pending} undelivered messages in the "
                "channel; snapshot between slots, not mid-slot"
            )
        state: Dict[str, object] = {
            "fleet": self.fleet.get_state(),
            "transport": self.channel.stats.get_state(),
            "pipeline": self.pipeline.get_state(),
            "policies": (
                None if self.vectorized
                else [node.policy.get_state() for node in self.nodes]
            ),
            # The latest forecasts, so a resumed session serves
            # forecast() immediately (JSON keys must be strings, hence
            # the parallel horizon/value lists).
            "forecasts": (
                None if self._forecasts is None else {
                    "horizons": sorted(self._forecasts),
                    "values": [
                        self._forecasts[h] for h in sorted(self._forecasts)
                    ],
                }
            ),
            # Link models serialize their queues and RNG mid-stream, so
            # snapshotting with messages in flight is fine — they mature
            # identically after resume.
            "link": None if self.link is None else self.link.get_state(),
        }
        session = {
            "num_nodes": self.num_nodes,
            "num_resources": self.num_resources,
            "time": self._time,
            "policy": self.policy,
            "custom_policy_factory": self._custom_policy_factory,
            "custom_forecaster_factory": self._custom_forecaster_factory,
            "reorder_window": self.reorder_window,
            "vectorized": self.vectorized,
            "late_applied": self.late_applied,
            "late_dropped": self.late_dropped,
            "linked": self.link is not None,
        }
        return Checkpoint(
            config=self.config.to_dict(),
            session=session,
            state=state,
            version=CHECKPOINT_FORMAT_VERSION,
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Convenience: :meth:`snapshot` and write it to ``path``."""
        return self.snapshot().save(path)

    def restore(self, checkpoint: Checkpoint) -> None:
        """Load a checkpoint's state into this (freshly built) session.

        The session must have been constructed with the checkpoint's
        shape and configuration — :meth:`repro.api.Engine.resume` is
        the validated front door.
        """
        meta = checkpoint.session
        if (
            int(meta["num_nodes"]) != self.num_nodes
            or int(meta["num_resources"]) != self.num_resources
        ):
            raise CheckpointError(
                f"checkpoint holds a {meta['num_nodes']}x"
                f"{meta['num_resources']} fleet, session is "
                f"{self.num_nodes}x{self.num_resources}"
            )
        state = checkpoint.state
        adopt = checkpoint.claim_adoption()
        if adopt:
            # Zero-copy resume: the fleet's columns and the pipeline's
            # history windows become the checkpoint's own arrays
            # (copy-on-write views of the archive for mmap loads), so
            # restoring an N=1M session never holds two copies of the
            # state.  The channel's counter column is re-pointed at the
            # adopted array before set_state re-validates the totals
            # against it.
            self.fleet.adopt_state(state["fleet"])
            self.channel.stats.rebind_column(self.fleet.message_counts)
        else:
            self.fleet.set_state(state["fleet"])
        self.channel.stats.set_state(state["transport"])
        self.pipeline.set_state(state["pipeline"], adopt=adopt)
        policy_states = state["policies"]
        if not self.vectorized:
            if policy_states is None:
                raise CheckpointError(
                    "checkpoint was taken from a vectorized session and "
                    "carries no per-node policy objects; resume with "
                    "vectorized=True"
                )
            for node, policy_state in zip(self.nodes, policy_states):
                node.policy.set_state(policy_state)
        if bool(meta.get("linked", False)):
            if self.link is None:
                raise CheckpointError(
                    "checkpoint was taken from a linked session (its "
                    "link model may hold in-flight messages); resume "
                    "with a link of the same configuration"
                )
            self.link.set_state(state["link"])
        # A linkless checkpoint resumed with a link keeps the freshly
        # constructed link: the scenario starts applying from here on.
        self._time = int(meta["time"])
        self.reorder_window = int(meta["reorder_window"])
        self.late_applied = int(meta["late_applied"])
        self.late_dropped = int(meta["late_dropped"])
        forecasts = state.get("forecasts")
        self._forecasts = (
            None if forecasts is None else {
                int(h): np.asarray(values)
                for h, values in zip(
                    forecasts["horizons"], forecasts["values"]
                )
            }
        )


__all__ = ["PolicyFactory", "StreamSession"]
