#!/usr/bin/env python3
"""Bandwidth budgeting: choose the transmission budget B for a deployment.

The budget ``B`` is directly proportional to monitoring bandwidth
(Sec. II of the paper).  This example uses the object-level simulation —
real per-node policy objects, a transport channel with message/byte
accounting, and the central store — to show the operator-facing
trade-off: bytes on the wire vs staleness error, for both the adaptive
Lyapunov policy and uniform sampling.

Run:
    python examples/bandwidth_budgeting.py
"""

import numpy as np

from repro.core.config import TransmissionConfig
from repro.core.metrics import instantaneous_rmse, time_averaged_rmse
from repro.datasets import load_bitbrains_like
from repro.registry import TRANSMISSION_POLICIES
from repro.simulation.collection import CollectionSimulation
from repro.transmission.uniform import UniformTransmissionPolicy

NUM_NODES = 50
NUM_STEPS = 600
BUDGETS = (0.05, 0.1, 0.2, 0.3, 0.5)


def staleness_rmse(stored, truth):
    return time_averaged_rmse(
        instantaneous_rmse(stored[t, :, 0], truth[t])
        for t in range(truth.shape[0])
    )


def main() -> None:
    dataset = load_bitbrains_like(num_nodes=NUM_NODES, num_steps=NUM_STEPS)
    cpu = dataset.resource("cpu")

    print(f"{'B':>5}  {'policy':<9} {'messages':>9} {'KiB':>8} "
          f"{'freq':>6} {'RMSE(h=0)':>10}")
    adaptive_builder = TRANSMISSION_POLICIES.get("adaptive")
    for budget in BUDGETS:
        for name, factory in (
            # Registry-built adaptive policy (what Engine does per node).
            ("adaptive", lambda i: adaptive_builder(
                TransmissionConfig(budget=budget), i)),
            # Custom factory: stagger the uniform fleet's phases (the
            # registry default uses phase 0 on every node).
            ("uniform", lambda i: UniformTransmissionPolicy(
                budget, phase=i / NUM_NODES)),
        ):
            sim = CollectionSimulation(NUM_NODES, factory)
            result = sim.run(cpu)
            kib = result.stats.payload_bytes() / 1024
            print(f"{budget:>5.2f}  {name:<9} {result.stats.messages:>9d} "
                  f"{kib:>8.1f} {result.empirical_frequency:>6.3f} "
                  f"{staleness_rmse(result.stored, cpu):>10.4f}")
    print("\nReading the table: pick the smallest B whose RMSE is "
          "acceptable; adaptive gives a lower error at the same byte "
          "budget.")


if __name__ == "__main__":
    main()
