#!/usr/bin/env python3
"""Quickstart: monitor and forecast a cluster with three lines of setup.

Generates an Alibaba-like utilization trace, runs the full paper pipeline
(adaptive transmission at budget B = 0.3 → dynamic K = 3 clustering →
sample-and-hold forecasting with per-node offsets), and prints the
time-averaged RMSE per forecast horizon.

Run:
    python examples/quickstart.py
"""

from repro import Engine, PipelineConfig
from repro.datasets import load_alibaba_like


def main() -> None:
    dataset = load_alibaba_like(num_nodes=60, num_steps=500)
    cpu = dataset.resource("cpu")

    config = PipelineConfig.small(
        num_clusters=3,
        budget=0.3,
        max_horizon=5,
        initial_collection=150,
        retrain_interval=150,
    )
    result = Engine(config).run(cpu)

    print(f"dataset: {dataset.name}, {dataset.num_nodes} nodes, "
          f"{dataset.num_steps} steps")
    print(f"transmission frequency: {result.decisions.mean():.3f} "
          f"(budget {config.transmission.budget})")
    print(f"intermediate (clustering) RMSE: {result.intermediate_rmse:.4f}")
    print("forecast RMSE by horizon:")
    for horizon, rmse in sorted(result.rmse_by_horizon.items()):
        label = "staleness only" if horizon == 0 else f"{horizon} steps ahead"
        print(f"  h={horizon:<3d} {rmse:.4f}   ({label})")
    print("stage timings: " + "  ".join(
        f"{stage}={seconds:.2f}s"
        for stage, seconds in result.timings.items()
    ))


if __name__ == "__main__":
    main()
