#!/usr/bin/env python3
"""Capacity planning: place new tasks on machines forecast to have headroom.

The paper's motivating application (Sec. I): a controller receiving
intermittent utilization reports must assign incoming tasks to machines
that are *predicted* to have the most available resources — not the ones
that merely look idle right now.

This example runs the online pipeline over a Google-like trace and, at
the decision point, ranks machines by forecasted CPU headroom ``1 − x̂``
at horizon h.  It then scores the placement quality against an oracle
that knows the true future utilization, and against a naive policy that
ranks by the latest *stored* (possibly stale) measurements.

Run:
    python examples/capacity_planning.py
"""

import numpy as np

from repro.api import Engine
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.datasets import load_google_like

NUM_NODES = 80
NUM_STEPS = 450
HORIZON = 5
TASKS_TO_PLACE = 10
DECISION_POINTS = range(320, 440, 10)


def headroom_overlap(chosen: np.ndarray, truth_at_target: np.ndarray) -> float:
    """Fraction of chosen machines that are in the true top-K headroom set."""
    oracle = set(np.argsort(truth_at_target)[:TASKS_TO_PLACE].tolist())
    return len(oracle & set(chosen.tolist())) / TASKS_TO_PLACE


def main() -> None:
    dataset = load_google_like(num_nodes=NUM_NODES, num_steps=NUM_STEPS)
    cpu = dataset.resource("cpu")

    config = PipelineConfig(
        transmission=TransmissionConfig(budget=0.3),
        clustering=ClusteringConfig(num_clusters=3, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=HORIZON,
            initial_collection=300,
            retrain_interval=150,
        ),
    )
    # Streaming deployment: per-node adaptive policies, transport,
    # central store and pipeline advanced one slot at a time.
    engine = Engine(config, num_nodes=NUM_NODES, num_resources=1)
    outputs = [engine.step(cpu[t]) for t in range(NUM_STEPS)]

    forecast_scores = []
    stale_scores = []
    for t in DECISION_POINTS:
        target = t + HORIZON
        if target >= NUM_STEPS or outputs[t].node_forecasts is None:
            continue
        predicted = outputs[t].node_forecasts[HORIZON][:, 0]
        chosen_forecast = np.argsort(predicted)[:TASKS_TO_PLACE]
        chosen_stale = np.argsort(outputs[t].stored[:, 0])[:TASKS_TO_PLACE]
        forecast_scores.append(headroom_overlap(chosen_forecast, cpu[target]))
        stale_scores.append(headroom_overlap(chosen_stale, cpu[target]))

    print(f"placing {TASKS_TO_PLACE} tasks at {len(forecast_scores)} "
          f"decision points, horizon h={HORIZON}")
    print(f"  forecast-driven placement overlap with oracle: "
          f"{np.mean(forecast_scores):.2%}")
    print(f"  stale-measurement placement overlap with oracle: "
          f"{np.mean(stale_scores):.2%}")
    if np.mean(forecast_scores) >= np.mean(stale_scores):
        print("  -> forecasting improves placement over reacting to "
              "stale reports")


if __name__ == "__main__":
    main()
