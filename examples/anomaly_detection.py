#!/usr/bin/env python3
"""Anomaly detection: flag machines that deviate from their forecast.

The paper lists anomaly detection as a target application of the
forecasting mechanism (Sec. I).  The idea: the pipeline's per-node
forecast ``x̂_{i,t+h}`` is the *expected* behaviour of machine ``i``; a
machine whose reports keep deviating from its forecast far beyond its
own typical residual is anomalous.

The detector here keeps a per-node residual baseline (median + MAD,
robust to bursts) and requires ``PERSISTENCE`` consecutive violations
before flagging, so isolated workload spikes do not alarm.  Synthetic
anomalies (machines pinned at ~95% CPU) are injected into an
Alibaba-like trace and precision/recall are reported.

Run:
    python examples/anomaly_detection.py
"""

import numpy as np

from repro.api import Engine
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.datasets import load_alibaba_like

NUM_NODES = 60
NUM_STEPS = 420
HORIZON = 5
ANOMALY_START = 330
ANOMALOUS_NODES = (3, 17, 42)
THRESHOLD_SIGMA = 6.0
PERSISTENCE = 3
BASELINE_WINDOW = 60


def main() -> None:
    dataset = load_alibaba_like(num_nodes=NUM_NODES, num_steps=NUM_STEPS)
    cpu = dataset.resource("cpu").copy()
    rng = np.random.default_rng(0)
    for node in ANOMALOUS_NODES:
        cpu[ANOMALY_START:, node] = np.clip(
            0.95 + rng.normal(0, 0.02, NUM_STEPS - ANOMALY_START), 0, 1
        )

    config = PipelineConfig(
        transmission=TransmissionConfig(budget=0.3),
        clustering=ClusteringConfig(num_clusters=3, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=HORIZON,
            initial_collection=250,
            retrain_interval=150,
        ),
    )
    engine = Engine(config, num_nodes=NUM_NODES, num_resources=1)

    residuals = []  # rows: per-step |stored - forecast| per node
    violations = np.zeros(NUM_NODES, dtype=int)
    flagged = {}
    # Forecasts issued h steps ago are compared against today's reports;
    # the longer horizon keeps the forecaster from absorbing a sustained
    # anomaly before it can be noticed.
    forecast_queue = []
    for t in range(NUM_STEPS):
        output = engine.step(cpu[t])
        matured = None
        if len(forecast_queue) >= HORIZON:
            matured = forecast_queue.pop(0)
        if matured is not None:
            residual = np.abs(output.stored[:, 0] - matured)
            if len(residuals) >= BASELINE_WINDOW:
                window = np.stack(residuals[-BASELINE_WINDOW:])
                median = np.median(window, axis=0)
                mad = np.median(np.abs(window - median), axis=0) + 1e-6
                threshold = median + THRESHOLD_SIGMA * 1.4826 * mad
                violating = residual > threshold
                violations = np.where(violating, violations + 1, 0)
                for node in np.flatnonzero(violations == PERSISTENCE):
                    if node not in flagged:
                        flagged[int(node)] = t
                        print(f"  t={t}: node {node} flagged after "
                              f"{PERSISTENCE} consecutive violations "
                              f"(residual {residual[node]:.3f} > "
                              f"{threshold[node]:.3f})")
            residuals.append(residual)
        if output.node_forecasts is not None:
            forecast_queue.append(output.node_forecasts[HORIZON][:, 0])

    truth = set(ANOMALOUS_NODES)
    true_positives = len(set(flagged) & truth)
    precision = true_positives / len(flagged) if flagged else 0.0
    recall = true_positives / len(truth)
    detection_delays = [
        flagged[n] - ANOMALY_START for n in sorted(set(flagged) & truth)
    ]
    print(f"\ninjected anomalies: {sorted(truth)} at t={ANOMALY_START}")
    print(f"flagged: {sorted(flagged)}")
    print(f"precision: {precision:.2f}  recall: {recall:.2f}  "
          f"detection delays: {detection_delays} steps")
    print("\nNotes: the trace generator also injects fleet-level regime "
          "shifts (real workload migrations); nodes flagged outside the "
          "injected set usually coincide with those, and a machine whose "
          "normal envelope already reaches saturation (high variance) "
          "cannot be distinguished from its own busy periods.")


if __name__ == "__main__":
    main()
