#!/usr/bin/env python3
"""Forecast intervals: centroid predictions with uncertainty bands.

An extension beyond the paper: the ARIMA substrate exposes Gaussian
prediction intervals via its ψ-weights, so capacity planners can budget
against the *pessimistic* edge of the forecast instead of the point
estimate.  This example builds a cluster-centroid series from an
Alibaba-like trace, fits an ARIMA model by AICc grid search, and prints
the 90% band alongside the realized values — plus the empirical coverage
over a walk-forward evaluation.

Run:
    python examples/forecast_intervals.py
"""

import numpy as np

from repro.clustering.dynamic import DynamicClusterTracker
from repro.core.config import TransmissionConfig
from repro.datasets import load_alibaba_like
from repro.forecasting.arima import grid_search
from repro.simulation.collection import collect

NUM_NODES = 50
NUM_STEPS = 700
TRAIN = 400
HORIZON = 5
CONFIDENCE = 0.9


def main() -> None:
    dataset = load_alibaba_like(num_nodes=NUM_NODES, num_steps=NUM_STEPS)
    stored = collect(
        dataset.resource("cpu"), TransmissionConfig(budget=0.3)
    ).stored[:, :, 0]
    tracker = DynamicClusterTracker(3, seed=0)
    for t in range(NUM_STEPS):
        tracker.update(stored[t])
    series = tracker.centroid_series(0)[:, 0]

    search = grid_search(series[:TRAIN], max_p=3, max_d=1, max_q=2)
    model = search.best_model
    print(f"selected order: {search.best_order} "
          f"(AICc {model.aicc:.1f}, sigma {np.sqrt(model.sigma2):.4f})")

    point, lower, upper = model.forecast_interval(
        HORIZON, confidence=CONFIDENCE
    )
    print(f"\nforecast from t={TRAIN - 1} "
          f"({int(CONFIDENCE * 100)}% interval):")
    for h in range(HORIZON):
        realized = series[TRAIN - 1 + h + 1]
        inside = "ok " if lower[h] <= realized <= upper[h] else "MISS"
        print(f"  h={h + 1}: {point[h]:.3f} "
              f"[{lower[h]:.3f}, {upper[h]:.3f}]  "
              f"realized {realized:.3f}  {inside}")

    # Walk-forward coverage of the one-step 90% interval.
    hits, total = 0, 0
    for t in range(TRAIN, NUM_STEPS - 1):
        _, low, high = model.forecast_interval(1, confidence=CONFIDENCE)
        realized = series[t]
        hits += int(low[0] <= realized <= high[0])
        total += 1
        model.update(float(realized))
    print(f"\nwalk-forward 1-step coverage: {hits / total:.1%} "
          f"(target {CONFIDENCE:.0%}, {total} forecasts)")


if __name__ == "__main__":
    main()
