#!/usr/bin/env python3
"""Run every experiment in the paper at a reduced scale and print results.

Iterates the experiment registry (one entry per table/figure of the
paper) with small node/step counts so the whole sweep finishes in a few
minutes on a laptop.  For full-scale runs use the benchmark harness:

    pytest benchmarks/ --benchmark-only -s

Run:
    python examples/reproduce_paper.py [experiment-id ...]
"""

import sys
import time

from repro.experiments import EXPERIMENTS

#: Reduced-scale overrides per experiment (empty dict = defaults).
SMALL = {
    "fig1": dict(num_nodes=30, num_steps=500, cluster_nodes=40),
    "fig3": dict(num_nodes=30, num_steps=600),
    "fig4": dict(num_nodes=30, num_steps=500, budgets=(0.1, 0.3, 0.5, 1.0)),
    "fig5": dict(num_nodes=30, num_steps=300, windows=(1, 5, 10)),
    "table1": dict(num_nodes=30, num_steps=300),
    "fig6": dict(num_nodes=30, num_steps=300, budgets=(0.1, 0.3, 0.5),
                 resources=("cpu",)),
    "fig7": dict(num_nodes=30, num_steps=300,
                 cluster_counts=(1, 2, 3, 5, 10), resources=("cpu",)),
    "fig8": dict(num_nodes=30, num_steps=450, start=150,
                 retrain_interval=150),
    "fig9": dict(num_nodes=30, num_steps=400, horizons=(1, 5, 10),
                 initial_collection=150, retrain_interval=150),
    "fig10": dict(num_nodes=50, num_steps=400, horizons=(1, 5, 10),
                  start=80),
    "table2": dict(num_nodes=20, num_steps=500, initial_collection=200,
                   retrain_interval=150, lstm_epochs=15),
    "table3": dict(num_nodes=40, num_steps=400, start=80),
    "fig11": dict(num_nodes=40, num_steps=400, horizons=(1, 5, 10),
                  start=80),
    "fig12": dict(num_nodes=60, train_steps=300, test_steps=300,
                  monitor_counts=(10, 20, 40)),
}


def main() -> None:
    requested = sys.argv[1:] or list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}")
        print(f"available: {sorted(EXPERIMENTS)}")
        raise SystemExit(1)
    for name in requested:
        runner = EXPERIMENTS[name]
        kwargs = SMALL.get(name, {})
        print(f"\n{'=' * 60}\n{name}  (scaled-down: {kwargs})\n{'=' * 60}")
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.format())
        print(f"[{name} finished in {elapsed:.1f}s]")


if __name__ == "__main__":
    main()
